"""NVML/PCM-style power sampling over a trace.

The paper's Fig. 1 samples ``nvmlDeviceGetPowerUsage`` while GEMMs run,
and Table II integrates Intel PCM energy counters.  :class:`PowerSampler`
replays a :class:`~repro.sim.trace.Trace` at a fixed sampling period and
reports (timestamp, Watt) pairs — including the idle floor in gaps — plus
integral energy, so the harness can regenerate both artefacts with the
same code path the real tools provide.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.specs import DeviceSpec
from repro.sim.trace import Trace

__all__ = ["PowerSample", "PowerSampler"]


@dataclass(frozen=True)
class PowerSample:
    """One sampled (time, power) point."""

    time_s: float
    power_w: float


class PowerSampler:
    """Sample instantaneous package power from a completed trace.

    Parameters
    ----------
    device:
        Supplies the idle floor reported between kernels.
    period_s:
        Sampling period; NVML polling loops typically run at 10-100 ms.
    """

    def __init__(self, device: DeviceSpec, *, period_s: float = 0.05) -> None:
        if period_s <= 0.0:
            raise ValueError("sampling period must be positive")
        self.device = device
        self.period_s = period_s

    def power_at(self, trace: Trace, t: float) -> float:
        """Instantaneous power at simulated time ``t`` (idle in gaps)."""
        for r in trace:
            if r.start <= t < r.end:
                return r.power_w
        return self.device.idle_w

    def sample(self, trace: Trace, *, until: float | None = None) -> list[PowerSample]:
        """Sample the whole trace (or up to ``until`` seconds).

        Vectorised: builds the kernel interval arrays once and uses
        ``searchsorted`` per sample batch rather than scanning records.
        """
        horizon = until if until is not None else trace.total_time
        if horizon <= 0.0:
            return []
        times = np.arange(0.0, horizon, self.period_s)
        if not len(trace):
            return [PowerSample(float(t), self.device.idle_w) for t in times]
        starts = np.array([r.start for r in trace])
        ends = np.array([r.end for r in trace])
        powers = np.array([r.power_w for r in trace])
        # Records are contiguous and ordered (in-order engine); the record
        # covering time t is the last one with start <= t, provided t < end.
        idx = np.searchsorted(starts, times, side="right") - 1
        idx = np.clip(idx, 0, len(starts) - 1)
        covered = (starts[idx] <= times) & (times < ends[idx])
        watts = np.where(covered, powers[idx], self.device.idle_w)
        return [PowerSample(float(t), float(w)) for t, w in zip(times, watts)]

    def average_power(self, trace: Trace) -> float:
        """Energy/time over the busy span of the trace."""
        t = trace.total_time
        if t <= 0.0:
            return self.device.idle_w
        return trace.total_energy / t

    def energy(self, trace: Trace) -> float:
        """Integrated energy in Joules (what PCM's counters accumulate)."""
        return trace.total_energy

"""Kernel launch descriptors.

A :class:`KernelLaunch` is the unit of simulated work: a named operation
with a flop count, a device-memory traffic estimate, a numeric format and
an optional explicit target unit.  Convenience constructors cover the
kernel shapes that appear across the paper's workloads (GEMM, GEMV,
convolutions, element-wise maps, SpMV, FFT, stencils, host<->device
copies).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import DeviceError
from repro.units import gemm_flops, gemv_flops

__all__ = ["KernelKind", "KernelLaunch"]

_FMT_BYTES = {"fp64": 8, "fp32": 4, "tf32": 4, "fp16": 2, "bf16": 2}


class KernelKind(enum.Enum):
    """Taxonomy of simulated kernels.

    The names double as the roofline efficiency keys in
    :data:`repro.hardware.roofline.KIND_EFFICIENCY`.
    """

    GEMM = "gemm"
    GEMV = "gemv"
    BLAS1 = "blas1"
    CONV2D = "conv2d"
    CONV3D = "conv3d"
    ELEMENTWISE = "elementwise"
    REDUCTION = "reduction"
    SPMV = "spmv"
    SPMM = "spmm"
    FFT = "fft"
    STENCIL = "stencil"
    RNG = "rng"
    SORT = "sort"
    SCAN = "scan"
    BRANCHY = "branchy"
    TABLE_LOOKUP = "table_lookup"
    MEMCPY_H2D = "memcpy_h2d"
    MEMCPY_D2H = "memcpy_d2h"
    MEMSET = "memset"
    IO = "io"
    COMM = "comm"
    OTHER = "other"

    @property
    def is_memcpy(self) -> bool:
        return self in (KernelKind.MEMCPY_H2D, KernelKind.MEMCPY_D2H)

    @property
    def is_compute(self) -> bool:
        return not self.is_memcpy and self not in (
            KernelKind.IO,
            KernelKind.COMM,
            KernelKind.MEMSET,
        )


@dataclass(frozen=True)
class KernelLaunch:
    """One unit of simulated device work.

    Parameters
    ----------
    kind:
        The :class:`KernelKind`; drives the roofline efficiency and the
        power model.
    name:
        Human-readable label, e.g. ``"dgemm"`` or ``"resnet50/conv1_fwd"``.
    flops:
        Floating-point operations performed.
    nbytes:
        Device-memory traffic in bytes (reads + writes).
    fmt:
        Numeric-format name of the arithmetic (``"fp64"`` …).
    unit:
        Target compute unit name; ``None`` selects the fastest eligible
        unit (matrix engines only when the execution context permits).
    min_seconds:
        Lower bound on the kernel's duration, for work that is neither
        flop- nor bandwidth-shaped (I/O waits, latency-bound loops).
    tag:
        Free-form grouping label used by the profilers (layer name,
        benchmark phase).
    """

    kind: KernelKind
    name: str
    flops: float = 0.0
    nbytes: float = 0.0
    fmt: str = "fp64"
    unit: str | None = None
    min_seconds: float = 0.0
    tag: str = ""

    def __post_init__(self) -> None:
        if self.flops < 0 or self.nbytes < 0 or self.min_seconds < 0:
            raise DeviceError(
                f"kernel {self.name!r}: negative work/duration"
            )

    # -- constructors ----------------------------------------------------

    @staticmethod
    def element_bytes(fmt: str) -> int:
        """Storage bytes per element of a format (tf32 is stored as fp32)."""
        return _FMT_BYTES.get(fmt, 8)

    @classmethod
    def gemm(
        cls,
        m: int,
        n: int,
        k: int,
        *,
        fmt: str = "fp64",
        name: str = "gemm",
        unit: str | None = None,
        tag: str = "",
    ) -> "KernelLaunch":
        """Dense matrix multiply ``C(m,n) += A(m,k) @ B(k,n)``.

        Traffic model: read A, B, read+write C once each (a well-blocked
        GEMM; the compute bound dominates for large sizes anyway).
        """
        e = cls.element_bytes(fmt)
        nbytes = e * (m * k + k * n + 2 * m * n)
        return cls(
            KernelKind.GEMM,
            name,
            flops=gemm_flops(m, n, k),
            nbytes=float(nbytes),
            fmt=fmt,
            unit=unit,
            tag=tag,
        )

    @classmethod
    def gemv(
        cls,
        m: int,
        n: int,
        *,
        fmt: str = "fp64",
        name: str = "gemv",
        tag: str = "",
    ) -> "KernelLaunch":
        """Dense matrix-vector product; bandwidth bound (streams the matrix)."""
        e = cls.element_bytes(fmt)
        return cls(
            KernelKind.GEMV,
            name,
            flops=gemv_flops(m, n),
            nbytes=float(e * (m * n + n + 2 * m)),
            fmt=fmt,
            tag=tag,
        )

    @classmethod
    def blas1(
        cls,
        n: int,
        *,
        flops_per_element: float = 2.0,
        streams: int = 3,
        fmt: str = "fp64",
        name: str = "axpy",
        tag: str = "",
    ) -> "KernelLaunch":
        """Vector-vector operation streaming ``streams`` arrays of length n."""
        e = cls.element_bytes(fmt)
        return cls(
            KernelKind.BLAS1,
            name,
            flops=flops_per_element * n,
            nbytes=float(e * streams * n),
            fmt=fmt,
            tag=tag,
        )

    @classmethod
    def conv2d(
        cls,
        batch: int,
        cin: int,
        cout: int,
        hout: int,
        wout: int,
        kh: int,
        kw: int,
        *,
        fmt: str = "fp32",
        name: str = "conv2d",
        tag: str = "",
    ) -> "KernelLaunch":
        """2-D convolution, direct/implicit-GEMM flop count."""
        flops = 2.0 * batch * cout * hout * wout * cin * kh * kw
        e = cls.element_bytes(fmt)
        nbytes = e * (
            batch * cin * hout * wout  # input (approx, stride-1)
            + cout * cin * kh * kw
            + 2 * batch * cout * hout * wout
        )
        return cls(
            KernelKind.CONV2D, name, flops=flops, nbytes=float(nbytes),
            fmt=fmt, tag=tag,
        )

    @classmethod
    def conv3d(
        cls,
        batch: int,
        cin: int,
        cout: int,
        dout: int,
        hout: int,
        wout: int,
        kd: int,
        kh: int,
        kw: int,
        *,
        fmt: str = "fp32",
        name: str = "conv3d",
        tag: str = "",
    ) -> "KernelLaunch":
        """3-D convolution (Cosmoflow's kernel; no TC implementation exists
        per the paper, so it never targets a matrix engine)."""
        flops = 2.0 * batch * cout * dout * hout * wout * cin * kd * kh * kw
        e = cls.element_bytes(fmt)
        nbytes = e * (
            batch * cin * dout * hout * wout
            + cout * cin * kd * kh * kw
            + 2 * batch * cout * dout * hout * wout
        )
        return cls(
            KernelKind.CONV3D, name, flops=flops, nbytes=float(nbytes),
            fmt=fmt, tag=tag,
        )

    @classmethod
    def elementwise(
        cls,
        n: int,
        *,
        flops_per_element: float = 1.0,
        streams: int = 2,
        fmt: str = "fp32",
        name: str = "eltwise",
        tag: str = "",
    ) -> "KernelLaunch":
        """Map over ``n`` elements touching ``streams`` arrays."""
        e = cls.element_bytes(fmt)
        return cls(
            KernelKind.ELEMENTWISE,
            name,
            flops=flops_per_element * n,
            nbytes=float(e * streams * n),
            fmt=fmt,
            tag=tag,
        )

    @classmethod
    def spmv(
        cls,
        nnz: int,
        nrows: int,
        *,
        fmt: str = "fp64",
        name: str = "spmv",
        tag: str = "",
    ) -> "KernelLaunch":
        """CSR sparse matrix-vector product: 2 flop and ~12-16 bytes/nnz."""
        e = cls.element_bytes(fmt)
        nbytes = nnz * (e + 4) + nrows * (2 * e + 4)
        return cls(
            KernelKind.SPMV, name, flops=2.0 * nnz, nbytes=float(nbytes),
            fmt=fmt, tag=tag,
        )

    @classmethod
    def fft(
        cls,
        n_total: int,
        *,
        fmt: str = "fp64",
        name: str = "fft",
        tag: str = "",
    ) -> "KernelLaunch":
        """Complex FFT over ``n_total`` points: ``5 n log2 n`` flops."""
        import math

        flops = 5.0 * n_total * max(1.0, math.log2(max(n_total, 2)))
        e = cls.element_bytes(fmt)
        return cls(
            KernelKind.FFT, name, flops=flops,
            nbytes=float(4 * e * n_total), fmt=fmt, tag=tag,
        )

    @classmethod
    def stencil(
        cls,
        n_points: int,
        *,
        flops_per_point: float = 10.0,
        bytes_per_point: float = 24.0,
        fmt: str = "fp64",
        name: str = "stencil",
        tag: str = "",
    ) -> "KernelLaunch":
        """Structured-grid sweep (the dominant pattern of the CFD and
        geoscience benchmarks in Table V)."""
        return cls(
            KernelKind.STENCIL,
            name,
            flops=flops_per_point * n_points,
            nbytes=bytes_per_point * n_points,
            fmt=fmt,
            tag=tag,
        )

    @classmethod
    def memcpy(
        cls,
        nbytes: float,
        *,
        direction: str = "h2d",
        name: str | None = None,
        tag: str = "",
    ) -> "KernelLaunch":
        """Host<->device transfer over the host link."""
        kind = KernelKind.MEMCPY_H2D if direction == "h2d" else KernelKind.MEMCPY_D2H
        return cls(kind, name or f"memcpy_{direction}", nbytes=float(nbytes), tag=tag)

"""Execution simulator: kernels, a simulated device clock, traces, power.

This is the stand-in for the paper's physical testbeds.  Workloads and
the BLAS substrate emit :class:`~repro.sim.kernels.KernelLaunch`
descriptors; a :class:`~repro.sim.engine.SimulatedDevice` turns each into
a timed, power-annotated :class:`~repro.sim.trace.KernelRecord` using the
roofline and energy models of :mod:`repro.hardware`.  The
:class:`~repro.sim.power.PowerSampler` replays a trace the way the paper
sampled NVML/PCM counters (Fig. 1, Table II).
"""

from repro.sim.kernels import KernelKind, KernelLaunch
from repro.sim.trace import KernelRecord, Trace
from repro.sim.engine import SimulatedDevice
from repro.sim.power import PowerSampler, PowerSample
from repro.sim.context import (
    ExecutionContext,
    current_context,
    execution_context,
)

__all__ = [
    "KernelKind",
    "KernelLaunch",
    "KernelRecord",
    "Trace",
    "SimulatedDevice",
    "PowerSampler",
    "PowerSample",
    "ExecutionContext",
    "current_context",
    "execution_context",
]

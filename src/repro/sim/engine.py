"""The simulated device: turns kernel launches into timed records.

:class:`SimulatedDevice` owns a monotonically advancing clock and a
:class:`~repro.sim.trace.Trace`.  Each :meth:`launch` call places the
kernel on a compute unit (honouring an explicit request, otherwise
picking the fastest eligible unit), prices it with the roofline model,
annotates package power from the energy model, and advances the clock.

Matrix engines are auto-selected only for GEMM-shaped kinds and only when
``allow_matrix_engine`` is on — this single switch is how the harness
runs the paper's "with TCs" vs "without TCs" configurations.
"""

from __future__ import annotations

from repro.errors import DeviceError
from repro.hardware.energy import kernel_power, memcpy_power
from repro.hardware.roofline import roofline_time
from repro.hardware.specs import ComputeUnitSpec, DeviceSpec
from repro.sim.kernels import KernelKind, KernelLaunch
from repro.sim.trace import KernelRecord, Trace

__all__ = ["SimulatedDevice"]

# Kernel kinds a matrix engine may be auto-selected for.  The paper's
# challenge list (Sec. V-B1) explains why BLAS-1/2 shapes stay off the
# systolic array.
_ME_ELIGIBLE_KINDS = frozenset(
    {KernelKind.GEMM, KernelKind.CONV2D, KernelKind.SPMM}
)

_DEFAULT_IO_BPS = 2.0e9  # node-local filesystem stream rate
_DEFAULT_COMM_LATENCY_S = 2.0e-6  # MPI pt2pt latency


class SimulatedDevice:
    """A device executing kernels on a simulated clock.

    Parameters
    ----------
    spec:
        The hardware model to execute on.
    allow_matrix_engine:
        Whether GEMM-shaped kernels may be placed on the matrix engine
        automatically.  Explicit ``unit=`` requests bypass this switch.
    io_bps, comm_bps:
        Byte rates for the IO and COMM kernel kinds (the spec's host link
        is used for COMM when ``comm_bps`` is None).
    """

    def __init__(
        self,
        spec: DeviceSpec,
        *,
        allow_matrix_engine: bool = True,
        io_bps: float = _DEFAULT_IO_BPS,
        comm_bps: float | None = None,
    ) -> None:
        self.spec = spec
        self.allow_matrix_engine = allow_matrix_engine
        self.io_bps = io_bps
        self.comm_bps = comm_bps if comm_bps is not None else spec.memory.host_link_bps
        self.clock = 0.0
        self.trace = Trace()

    # -- lifecycle ---------------------------------------------------------

    def reset(self) -> None:
        """Zero the clock and clear the trace."""
        self.clock = 0.0
        self.trace = Trace()

    @property
    def elapsed(self) -> float:
        """Simulated seconds since reset."""
        return self.clock

    @property
    def energy(self) -> float:
        """Joules consumed by traced kernels."""
        return self.trace.total_energy

    # -- placement -----------------------------------------------------------

    def select_unit(self, kernel: KernelLaunch) -> ComputeUnitSpec:
        """Resolve the compute unit a kernel runs on."""
        if kernel.unit is not None:
            unit = self.spec.unit(kernel.unit)
            if kernel.flops > 0.0 and not unit.supports(kernel.fmt):
                raise DeviceError(
                    f"unit {unit.name!r} on {self.spec.name!r} does not "
                    f"support {kernel.fmt!r} (kernel {kernel.name!r})"
                )
            return unit
        allow_me = (
            self.allow_matrix_engine and kernel.kind in _ME_ELIGIBLE_KINDS
        )
        return self.spec.best_unit(kernel.fmt, allow_matrix=allow_me)

    # -- execution -------------------------------------------------------------

    def launch(self, kernel: KernelLaunch) -> KernelRecord:
        """Execute one kernel: price it, record it, advance the clock."""
        if kernel.kind.is_memcpy:
            record = self._run_transfer(
                kernel, self.spec.memory.host_link_bps, memcpy_power(self.spec)
            )
        elif kernel.kind is KernelKind.IO:
            record = self._run_transfer(kernel, self.io_bps, self.spec.idle_w)
        elif kernel.kind is KernelKind.COMM:
            record = self._run_transfer(
                kernel,
                self.comm_bps,
                self.spec.idle_w,
                latency=_DEFAULT_COMM_LATENCY_S,
            )
        elif kernel.kind is KernelKind.MEMSET:
            dur = kernel.nbytes / self.spec.memory.sustained_bps
            dur = max(dur, kernel.min_seconds) + self.spec.launch_latency_s
            record = KernelRecord(
                launch=kernel,
                unit="copy-engine",
                start=self.clock,
                duration=dur,
                power_w=memcpy_power(self.spec),
                t_memory=dur,
            )
        else:
            record = self._run_compute(kernel)
        self.trace.append(record)
        self.clock = record.end
        return record

    def launch_many(self, kernels: list[KernelLaunch]) -> list[KernelRecord]:
        """Execute kernels back-to-back (the simulator is in-order; the
        paper's single-GPU runs serialise kernels the same way)."""
        return [self.launch(k) for k in kernels]

    # -- internals -----------------------------------------------------------

    def _run_transfer(
        self,
        kernel: KernelLaunch,
        bps: float,
        power: float,
        *,
        latency: float = 0.0,
    ) -> KernelRecord:
        if bps <= 0.0:
            raise DeviceError(f"non-positive transfer rate for {kernel.name!r}")
        dur = kernel.nbytes / bps + latency
        dur = max(dur, kernel.min_seconds) + self.spec.launch_latency_s
        return KernelRecord(
            launch=kernel,
            unit="copy-engine",
            start=self.clock,
            duration=dur,
            power_w=min(power, self.spec.tdp_w),
            t_memory=dur,
        )

    def _run_compute(self, kernel: KernelLaunch) -> KernelRecord:
        unit = self.select_unit(kernel)
        dur, t_comp, t_mem = roofline_time(
            self.spec,
            unit,
            flops=kernel.flops,
            nbytes=kernel.nbytes,
            fmt=kernel.fmt,
            kind=kernel.kind.value,
        )
        dur = max(dur, kernel.min_seconds) + self.spec.launch_latency_s
        if dur <= 0.0:
            # Degenerate zero-work kernel on a zero-latency device: record
            # it with an infinitesimal duration so traces stay ordered.
            dur = 1e-12
        power = kernel_power(
            self.spec,
            unit,
            kernel.fmt,
            compute_utilization=t_comp / dur if dur > 0 else 0.0,
            memory_utilization=t_mem / dur if dur > 0 else 0.0,
        )
        return KernelRecord(
            launch=kernel,
            unit=unit.name,
            start=self.clock,
            duration=dur,
            power_w=power,
            t_compute=t_comp,
            t_memory=t_mem,
        )

"""Execution context: the ambient (device, profiler) pair.

The instrumented BLAS (:mod:`repro.blas`) and the workloads need to know
where their kernels run and who is observing them — exactly the role the
runtime environment (MKL + Score-P) plays in the paper's methodology.
A context is installed with :func:`execution_context` and looked up with
:func:`current_context`; contexts nest (``contextvars``-based), so a
workload can run an inner region on a different device model.
"""

from __future__ import annotations

import contextlib
from contextvars import ContextVar
from typing import Any, Iterator

from repro.errors import DispatchError
from repro.hardware.specs import DeviceSpec
from repro.sim.engine import SimulatedDevice
from repro.sim.kernels import KernelLaunch
from repro.sim.trace import KernelRecord

__all__ = ["ExecutionContext", "execution_context", "current_context"]

_current: ContextVar["ExecutionContext | None"] = ContextVar(
    "repro_execution_context", default=None
)


class ExecutionContext:
    """Ambient execution state for instrumented code.

    Parameters
    ----------
    device:
        The simulated device kernels are priced on.
    profiler:
        Optional observer with ``on_kernel(record)`` — usually a
        :class:`repro.profiling.scorep.Profiler`.
    compute_numerics:
        When False, the BLAS layer skips the real NumPy arithmetic and
        only emits kernels (used by large parameter sweeps where the
        numeric results are irrelevant and only timing matters).
    default_unit:
        When set, compute kernels launched without an explicit unit are
        routed to this unit — how the Table II harness pins GEMMs to the
        Xeon's ``"sse"`` vs ``"avx2"`` pipes.
    """

    def __init__(
        self,
        device: SimulatedDevice,
        *,
        profiler: Any | None = None,
        compute_numerics: bool = True,
        default_unit: str | None = None,
    ) -> None:
        self.device = device
        self.profiler = profiler
        self.compute_numerics = compute_numerics
        self.default_unit = default_unit

    def launch(self, kernel: KernelLaunch) -> KernelRecord:
        """Run a kernel on the context's device, notifying the profiler."""
        if (
            self.default_unit is not None
            and kernel.unit is None
            and kernel.kind.is_compute
        ):
            import dataclasses

            kernel = dataclasses.replace(kernel, unit=self.default_unit)
        record = self.device.launch(kernel)
        if self.profiler is not None:
            self.profiler.on_kernel(record)
        return record

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.device.clock


@contextlib.contextmanager
def execution_context(
    device: SimulatedDevice | DeviceSpec | str,
    *,
    profiler: Any | None = None,
    allow_matrix_engine: bool = True,
    compute_numerics: bool = True,
    default_unit: str | None = None,
) -> Iterator[ExecutionContext]:
    """Install an execution context for the enclosed block.

    ``device`` may be an existing :class:`SimulatedDevice`, a
    :class:`DeviceSpec`, or a registry name (``"v100"``, ``"system1"``).
    """
    if isinstance(device, str):
        from repro.hardware.registry import get_device

        device = get_device(device)
    if isinstance(device, DeviceSpec):
        device = SimulatedDevice(
            device, allow_matrix_engine=allow_matrix_engine
        )
    ctx = ExecutionContext(
        device,
        profiler=profiler,
        compute_numerics=compute_numerics,
        default_unit=default_unit,
    )
    token = _current.set(ctx)
    try:
        yield ctx
    finally:
        _current.reset(token)


def current_context() -> ExecutionContext:
    """The innermost active context.

    Raises
    ------
    DispatchError
        When called outside any :func:`execution_context` block.
    """
    ctx = _current.get()
    if ctx is None:
        raise DispatchError(
            "no active execution context; wrap the call in "
            "`with execution_context(device): ...`"
        )
    return ctx

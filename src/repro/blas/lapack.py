"""Blocked LAPACK subset built on the instrumented BLAS.

These implementations are *real*: ``getrf`` performs partial-pivoted
blocked LU on the actual data, delegating the update steps to
:func:`repro.blas.level3.trsm` / :func:`~repro.blas.level3.gemm`, so the
profiler observes exactly the call structure the paper's wrapper sees in
MKL — the panel/pivot work lands in the LAPACK bucket while the O(n^3)
updates land in GEMM/BLAS.  This is the mechanism behind HPL's 76.8 %
GEMM share in Fig. 3.
"""

from __future__ import annotations

import contextlib

import numpy as np

from repro.blas.dispatch import as_matrix, execute_kernel, routine_name
from repro.blas.level3 import gemm, trsm, syrk
from repro.blas.stub import zero_stub
from repro.errors import DispatchError
from repro.sim.context import current_context
from repro.sim.kernels import KernelKind, KernelLaunch

__all__ = ["getrf", "getrs", "gesv", "potrf", "geqrf", "DEFAULT_BLOCK"]

DEFAULT_BLOCK = 192


def _maybe_region(name: str):
    ctx = current_context()
    if ctx.profiler is not None:
        return ctx.profiler.region(name)
    return contextlib.nullcontext()


def _panel_lu(a: np.ndarray, j0: int, jb: int, piv: np.ndarray) -> None:
    """Unblocked right-looking LU on panel columns [j0, j0+jb) with full-row
    swaps (so that P A = L U holds globally on return)."""
    m = a.shape[0]
    for i in range(jb):
        col = j0 + i
        if col >= m:
            break
        p = col + int(np.argmax(np.abs(a[col:, col])))
        piv[col] = p
        if p != col:
            a[[col, p], :] = a[[p, col], :]
        pivot = a[col, col]
        if pivot != 0.0:
            a[col + 1 :, col] /= pivot
            if i + 1 < jb:
                # Rank-1 update restricted to the panel; the trailing
                # matrix is updated later by the blocked GEMM.
                a[col + 1 :, col + 1 : j0 + jb] -= np.outer(
                    a[col + 1 :, col], a[col, col + 1 : j0 + jb]
                )


def getrf(
    a: np.ndarray,
    *,
    block: int = DEFAULT_BLOCK,
    fmt: str = "fp64",
) -> tuple[np.ndarray, np.ndarray] | tuple[None, None]:
    """Blocked LU with partial pivoting (dgetrf).

    Returns ``(lu, piv)`` where ``lu`` packs L (unit lower) and U, and
    ``piv[k]`` is the row exchanged with row ``k`` — or ``(None, None)``
    when the context runs with numerics disabled (timing only; the same
    kernel stream is still emitted).
    """
    am = as_matrix(a, "a")
    ctx = current_context()
    numerics = ctx.compute_numerics
    m, n = am.shape
    mn = min(m, n)
    work = am.copy() if numerics else None
    piv = np.arange(mn) if numerics else None
    e = KernelLaunch.element_bytes(fmt)

    with _maybe_region(routine_name("getrf", fmt)):
        for j in range(0, mn, block):
            jb = min(block, mn - j)
            rows_below = m - j
            # -- panel factorization (getf2) --------------------------------
            panel_flops = float(rows_below) * jb * jb  # ~ sum of rank-1s
            kernel = KernelLaunch(
                KernelKind.GEMV,
                routine_name("getf2", fmt),
                flops=panel_flops,
                nbytes=float(e * rows_below * jb * 2),
                fmt=fmt,
            )
            execute_kernel(
                kernel.name,
                kernel,
                (lambda j=j, jb=jb: _panel_lu(work, j, jb, piv))
                if numerics
                else None,
            )
            # -- row interchanges (laswp) ------------------------------------
            swap_kernel = KernelLaunch(
                KernelKind.ELEMENTWISE,
                routine_name("laswp", fmt),
                nbytes=float(e * 2 * jb * n),
                fmt=fmt,
            )
            execute_kernel(swap_kernel.name, swap_kernel, None)

            if j + jb < n:
                # -- U12 := L11^{-1} A12 (dtrsm) -----------------------------
                if numerics:
                    u12 = trsm(
                        work[j : j + jb, j : j + jb],
                        work[j : j + jb, j + jb :],
                        side="left",
                        lower=True,
                        unit_diagonal=True,
                        fmt=fmt,
                    )
                    work[j : j + jb, j + jb :] = u12
                else:
                    trsm(
                        zero_stub(jb, jb),
                        zero_stub(jb, n - j - jb),
                        side="left",
                        lower=True,
                        unit_diagonal=True,
                        fmt=fmt,
                    )
            if j + jb < mn and j + jb < n and m - j - jb > 0:
                # -- trailing update A22 -= L21 @ U12 (dgemm) ----------------
                if numerics:
                    upd = gemm(
                        work[j + jb :, j : j + jb],
                        work[j : j + jb, j + jb :],
                        c=work[j + jb :, j + jb :],
                        alpha=-1.0,
                        beta=1.0,
                        fmt=fmt,
                    )
                    work[j + jb :, j + jb :] = upd
                else:
                    gemm(
                        zero_stub(m - j - jb, jb),
                        zero_stub(jb, n - j - jb),
                        fmt=fmt,
                    )
    if not numerics:
        return None, None
    return work, piv


def getrs(
    lu: np.ndarray,
    piv: np.ndarray,
    b: np.ndarray,
    *,
    fmt: str = "fp64",
) -> np.ndarray | None:
    """Solve ``A x = b`` from a ``getrf`` factorization (dgetrs)."""
    lum = as_matrix(lu, "lu")
    ctx = current_context()
    numerics = ctx.compute_numerics
    bm = np.asarray(b, dtype=np.float64)
    vec_in = bm.ndim == 1
    if vec_in:
        bm = bm[:, None]
    with _maybe_region(routine_name("getrs", fmt)):
        if numerics:
            x = bm.copy()
            for k, p in enumerate(piv):
                if p != k:
                    x[[k, p], :] = x[[p, k], :]
            y = trsm(lum, x, side="left", lower=True, unit_diagonal=True, fmt=fmt)
            x = trsm(lum, y, side="left", lower=False, fmt=fmt)
        else:
            n_rhs = bm.shape[1]
            n = lum.shape[0]
            trsm(zero_stub(n, n), zero_stub(n, n_rhs), side="left", lower=True,
                 unit_diagonal=True, fmt=fmt)
            trsm(zero_stub(n, n), zero_stub(n, n_rhs), side="left", lower=False, fmt=fmt)
            x = None
    if x is None:
        return None
    return x[:, 0] if vec_in else x


def gesv(
    a: np.ndarray, b: np.ndarray, *, block: int = DEFAULT_BLOCK, fmt: str = "fp64"
) -> np.ndarray | None:
    """Driver: factor + solve (dgesv), like LAPACK's simple driver."""
    with _maybe_region(routine_name("gesv", fmt)):
        lu, piv = getrf(a, block=block, fmt=fmt)
        if lu is None:
            n = as_matrix(a, "a").shape[0]
            getrs(zero_stub(n, n), np.arange(n), b, fmt=fmt)
            return None
        return getrs(lu, piv, b, fmt=fmt)


def potrf(
    a: np.ndarray, *, block: int = DEFAULT_BLOCK, fmt: str = "fp64"
) -> np.ndarray | None:
    """Blocked Cholesky factorization (dpotrf), lower triangular.

    Requires a symmetric positive-definite input when numerics are on.
    """
    am = as_matrix(a, "a")
    ctx = current_context()
    numerics = ctx.compute_numerics
    n = am.shape[0]
    if am.shape[1] != n:
        raise DispatchError("potrf requires a square matrix")
    work = am.copy() if numerics else None
    e = KernelLaunch.element_bytes(fmt)

    with _maybe_region(routine_name("potrf", fmt)):
        for j in range(0, n, block):
            jb = min(block, n - j)
            kernel = KernelLaunch(
                KernelKind.GEMV,
                routine_name("potf2", fmt),
                flops=float(jb**3) / 3.0,
                nbytes=float(e * jb * jb),
                fmt=fmt,
            )

            def _factor_diag(j=j, jb=jb):
                work[j : j + jb, j : j + jb] = np.linalg.cholesky(
                    work[j : j + jb, j : j + jb]
                )

            execute_kernel(kernel.name, kernel, _factor_diag if numerics else None)
            if j + jb < n:
                if numerics:
                    # L21 = A21 L11^{-T}: right-solve against the upper
                    # triangular L11^T.
                    l21 = trsm(
                        work[j : j + jb, j : j + jb].T,
                        work[j + jb :, j : j + jb],
                        side="right",
                        lower=False,
                        fmt=fmt,
                    )
                    work[j + jb :, j : j + jb] = l21
                    c22 = syrk(
                        l21,
                        c=work[j + jb :, j + jb :],
                        alpha=-1.0,
                        beta=1.0,
                        fmt=fmt,
                    )
                    work[j + jb :, j + jb :] = c22
                else:
                    trsm(zero_stub(jb, jb), zero_stub(jb, n - j - jb),
                         side="left", lower=False, fmt=fmt)
                    syrk(zero_stub(n - j - jb, jb), fmt=fmt)
    if not numerics:
        return None
    return np.tril(work)


def geqrf(
    a: np.ndarray, *, block: int = DEFAULT_BLOCK, fmt: str = "fp64"
) -> tuple[np.ndarray, np.ndarray] | tuple[None, None]:
    """Blocked Householder QR (dgeqrf).

    For simplicity the numerics come from one NumPy QR while the kernel
    stream mirrors LAPACK's blocked structure (``geqr2`` panels +
    ``larfb`` trailing updates); returns ``(q, r)``.
    """
    am = as_matrix(a, "a")
    ctx = current_context()
    numerics = ctx.compute_numerics
    m, n = am.shape
    mn = min(m, n)
    e = KernelLaunch.element_bytes(fmt)
    with _maybe_region(routine_name("geqrf", fmt)):
        for j in range(0, mn, block):
            jb = min(block, mn - j)
            rows = m - j
            panel = KernelLaunch(
                KernelKind.GEMV,
                routine_name("geqr2", fmt),
                flops=2.0 * rows * jb * jb,
                nbytes=float(e * rows * jb * 2),
                fmt=fmt,
            )
            execute_kernel(panel.name, panel, None)
            cols = n - j - jb
            if cols > 0:
                update = KernelLaunch(
                    KernelKind.GEMM,
                    routine_name("larfb", fmt),
                    flops=4.0 * rows * cols * jb,
                    nbytes=float(e * (rows * cols + rows * jb) * 2),
                    fmt=fmt,
                )
                execute_kernel(update.name, update, None)
        if numerics:
            q, r = np.linalg.qr(am)
            return q, r
    return None, None

"""Instrumented BLAS / LAPACK / ScaLAPACK substrate.

The paper's profiling methodology hinges on *wrapping* the math library:
a Score-P wrapper around every MKL dense-linear-algebra entry point
attributes runtime to GEMM / other BLAS / (Sca)LAPACK buckets.  This
subpackage is the math library being wrapped: a NumPy-backed BLAS whose
every call

1. opens a profiler region named like the classic routine (``dgemm``,
   ``daxpy``, ``pdgetrf``) so the classifier buckets it,
2. emits a priced :class:`~repro.sim.kernels.KernelLaunch` on the active
   simulated device, and
3. (optionally) performs the real arithmetic so workloads produce
   checkable numerical results.

Routine naming follows BLAS conventions: a precision prefix (``d``, ``s``,
``h``) is derived from the compute format.
"""

from repro.blas.dispatch import execute_kernel, routine_name
from repro.blas.stub import zero_stub
from repro.blas.level1 import axpy, asum, copy, dot, nrm2, scal
from repro.blas.level2 import gemv, ger, trsv
from repro.blas.level3 import gemm, syrk, trsm
from repro.blas.lapack import geqrf, gesv, getrf, getrs, potrf
from repro.blas.scalapack import ProcessGrid, pdgemm, pdgetrf

__all__ = [
    "execute_kernel",
    "routine_name",
    "zero_stub",
    "axpy",
    "asum",
    "copy",
    "dot",
    "nrm2",
    "scal",
    "gemv",
    "ger",
    "trsv",
    "gemm",
    "syrk",
    "trsm",
    "getrf",
    "getrs",
    "gesv",
    "potrf",
    "geqrf",
    "ProcessGrid",
    "pdgemm",
    "pdgetrf",
]

"""BLAS level 1: vector-vector operations.

These are the memory-bound routines the paper's Sec. V-B1 argues matrix
engines cannot help with — miniFE's and NTChem's BLAS time falls in this
bucket (Fig. 3 discussion).  All are bandwidth-priced (streaming the
operand vectors) and numerically exact NumPy.
"""

from __future__ import annotations

import numpy as np

from repro.blas.dispatch import as_vector, execute_kernel, routine_name
from repro.sim.kernels import KernelLaunch

__all__ = ["axpy", "dot", "nrm2", "scal", "copy", "asum"]


def axpy(alpha: float, x: np.ndarray, y: np.ndarray, *, fmt: str = "fp64") -> np.ndarray | None:
    """``y := alpha*x + y`` (daxpy).  Returns the new y (or None when
    numerics are off)."""
    xv, yv = as_vector(x, "x"), as_vector(y, "y")
    n = xv.shape[0]
    k = KernelLaunch.blas1(n, flops_per_element=2.0, streams=3, fmt=fmt,
                           name=routine_name("axpy", fmt))
    result, _ = execute_kernel(k.name, k, lambda: alpha * xv + yv)
    return result


def dot(x: np.ndarray, y: np.ndarray, *, fmt: str = "fp64") -> float | None:
    """Inner product (ddot)."""
    xv, yv = as_vector(x, "x"), as_vector(y, "y")
    n = xv.shape[0]
    k = KernelLaunch.blas1(n, flops_per_element=2.0, streams=2, fmt=fmt,
                           name=routine_name("dot", fmt))
    result, _ = execute_kernel(k.name, k, lambda: float(xv @ yv))
    return result


def nrm2(x: np.ndarray, *, fmt: str = "fp64") -> float | None:
    """Euclidean norm (dnrm2)."""
    xv = as_vector(x, "x")
    n = xv.shape[0]
    k = KernelLaunch.blas1(n, flops_per_element=2.0, streams=1, fmt=fmt,
                           name=routine_name("nrm2", fmt))
    result, _ = execute_kernel(k.name, k, lambda: float(np.linalg.norm(xv)))
    return result


def scal(alpha: float, x: np.ndarray, *, fmt: str = "fp64") -> np.ndarray | None:
    """``x := alpha*x`` (dscal)."""
    xv = as_vector(x, "x")
    n = xv.shape[0]
    k = KernelLaunch.blas1(n, flops_per_element=1.0, streams=2, fmt=fmt,
                           name=routine_name("scal", fmt))
    result, _ = execute_kernel(k.name, k, lambda: alpha * xv)
    return result


def copy(x: np.ndarray, *, fmt: str = "fp64") -> np.ndarray | None:
    """``y := x`` (dcopy)."""
    xv = as_vector(x, "x")
    n = xv.shape[0]
    k = KernelLaunch.blas1(n, flops_per_element=0.0, streams=2, fmt=fmt,
                           name=routine_name("copy", fmt))
    result, _ = execute_kernel(k.name, k, xv.copy)
    return result


def asum(x: np.ndarray, *, fmt: str = "fp64") -> float | None:
    """Sum of absolute values (dasum)."""
    xv = as_vector(x, "x")
    n = xv.shape[0]
    k = KernelLaunch.blas1(n, flops_per_element=1.0, streams=1, fmt=fmt,
                           name=routine_name("asum", fmt))
    result, _ = execute_kernel(k.name, k, lambda: float(np.abs(xv).sum()))
    return result

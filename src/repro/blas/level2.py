"""BLAS level 2: matrix-vector operations.

mVMC and socorro spend measurable runtime here (Fig. 3); like level 1,
these stream the matrix once and are bandwidth-bound, which is why the
paper calls their ME mapping only *potentially indirect*.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.blas.dispatch import as_matrix, as_vector, execute_kernel, routine_name
from repro.sim.kernels import KernelKind, KernelLaunch

__all__ = ["gemv", "ger", "trsv"]


def gemv(
    a: np.ndarray,
    x: np.ndarray,
    *,
    alpha: float = 1.0,
    beta: float = 0.0,
    y: np.ndarray | None = None,
    fmt: str = "fp64",
) -> np.ndarray | None:
    """``y := alpha*A@x + beta*y`` (dgemv)."""
    am = as_matrix(a, "a")
    xv = as_vector(x, "x")
    m, n = am.shape
    k = KernelLaunch.gemv(m, n, fmt=fmt, name=routine_name("gemv", fmt))

    def compute() -> np.ndarray:
        out = alpha * (am @ xv)
        if beta != 0.0 and y is not None:
            out += beta * as_vector(y, "y")
        return out

    result, _ = execute_kernel(k.name, k, compute)
    return result


def ger(
    alpha: float, x: np.ndarray, y: np.ndarray, a: np.ndarray, *, fmt: str = "fp64"
) -> np.ndarray | None:
    """Rank-1 update ``A := alpha*x y^T + A`` (dger)."""
    am = as_matrix(a, "a")
    xv, yv = as_vector(x, "x"), as_vector(y, "y")
    m, n = am.shape
    e = KernelLaunch.element_bytes(fmt)
    k = KernelLaunch(
        KernelKind.GEMV,
        routine_name("ger", fmt),
        flops=2.0 * m * n,
        nbytes=float(e * (2 * m * n + m + n)),
        fmt=fmt,
    )
    result, _ = execute_kernel(k.name, k, lambda: am + alpha * np.outer(xv, yv))
    return result


def trsv(
    a: np.ndarray, b: np.ndarray, *, lower: bool = True, fmt: str = "fp64"
) -> np.ndarray | None:
    """Triangular solve ``A x = b`` (dtrsv)."""
    am = as_matrix(a, "a")
    bv = as_vector(b, "b")
    n = am.shape[0]
    e = KernelLaunch.element_bytes(fmt)
    k = KernelLaunch(
        KernelKind.GEMV,
        routine_name("trsv", fmt),
        flops=float(n * n),
        nbytes=float(e * (n * n / 2 + 2 * n)),
        fmt=fmt,
    )
    result, _ = execute_kernel(
        k.name, k, lambda: scipy.linalg.solve_triangular(am, bv, lower=lower)
    )
    return result

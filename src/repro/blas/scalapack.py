"""ScaLAPACK-flavoured distributed routines on a simulated process grid.

The paper's wrapper covers PBLAS and ScaLAPACK headers too (mVMC is the
benchmark with visible ScaLAPACK time in Fig. 3).  We model a 2-D
block-cyclic process grid and simulate *one representative rank's*
timeline: local panel work plus the row/column broadcasts of SUMMA-style
algorithms.  Numerics, when enabled, are computed once on the global
matrix — the distribution affects timing, never values.
"""

from __future__ import annotations

import contextlib
import math
from dataclasses import dataclass

import numpy as np

from repro.blas.dispatch import as_matrix, execute_kernel, routine_name
from repro.errors import DispatchError
from repro.sim.context import current_context
from repro.sim.kernels import KernelKind, KernelLaunch

__all__ = ["ProcessGrid", "pdgemm", "pdgetrf"]


@dataclass(frozen=True)
class ProcessGrid:
    """A 2-D block-cyclic process grid (the BLACS abstraction)."""

    nprow: int
    npcol: int
    block: int = 128

    def __post_init__(self) -> None:
        if self.nprow < 1 or self.npcol < 1 or self.block < 1:
            raise DispatchError("process grid dimensions must be positive")

    @property
    def size(self) -> int:
        return self.nprow * self.npcol

    def local_rows(self, m: int) -> int:
        """Rows owned by a representative rank (ceil of even split)."""
        return math.ceil(m / self.nprow)

    def local_cols(self, n: int) -> int:
        return math.ceil(n / self.npcol)


def _maybe_region(name: str):
    ctx = current_context()
    if ctx.profiler is not None:
        return ctx.profiler.region(name)
    return contextlib.nullcontext()


def pdgemm(
    a: np.ndarray,
    b: np.ndarray,
    grid: ProcessGrid,
    *,
    fmt: str = "fp64",
) -> np.ndarray | None:
    """Distributed GEMM (SUMMA): per k-panel, broadcast the A-column and
    B-row panels along grid rows/columns, then multiply locally."""
    am, bm = as_matrix(a, "a"), as_matrix(b, "b")
    m, k_dim = am.shape
    n = bm.shape[1]
    e = KernelLaunch.element_bytes(fmt)
    ml, nl = grid.local_rows(m), grid.local_cols(n)
    ctx = current_context()
    result: np.ndarray | None = None
    with _maybe_region("p" + routine_name("gemm", fmt)):
        for k0 in range(0, k_dim, grid.block):
            kb = min(grid.block, k_dim - k0)
            # Broadcast A(:, k-panel) along the process row, B(k-panel, :)
            # along the process column.
            ctx.launch(
                KernelLaunch(
                    KernelKind.COMM,
                    "blacs_bcast_a",
                    nbytes=float(e * ml * kb * max(0, grid.npcol - 1)),
                )
            )
            ctx.launch(
                KernelLaunch(
                    KernelKind.COMM,
                    "blacs_bcast_b",
                    nbytes=float(e * kb * nl * max(0, grid.nprow - 1)),
                )
            )
            local = KernelLaunch.gemm(
                ml, nl, kb, fmt=fmt, name=routine_name("gemm", fmt)
            )
            execute_kernel(local.name, local, None)
        if ctx.compute_numerics:
            result = am @ bm
    return result


def pdgetrf(
    a: np.ndarray,
    grid: ProcessGrid,
    *,
    fmt: str = "fp64",
) -> tuple[np.ndarray, np.ndarray] | tuple[None, None]:
    """Distributed blocked LU: per panel, factor the local column block,
    broadcast it, then update the local trailing matrix.

    This is the computational skeleton of HPL.  Returns the (serial)
    ``getrf`` result for verification when numerics are on.
    """
    am = as_matrix(a, "a")
    m, n = am.shape
    mn = min(m, n)
    e = KernelLaunch.element_bytes(fmt)
    ctx = current_context()
    nb = grid.block
    with _maybe_region("p" + routine_name("getrf", fmt)):
        for j in range(0, mn, nb):
            jb = min(nb, mn - j)
            rows_local = grid.local_rows(m - j)
            cols_local = grid.local_cols(max(0, n - j - jb))
            panel = KernelLaunch(
                KernelKind.GEMV,
                routine_name("getf2", fmt),
                flops=float(rows_local) * jb * jb,
                nbytes=float(e * rows_local * jb * 2),
                fmt=fmt,
            )
            execute_kernel(panel.name, panel, None)
            # Panel broadcast + pivot exchange.
            ctx.launch(
                KernelLaunch(
                    KernelKind.COMM,
                    "panel_bcast",
                    nbytes=float(e * rows_local * jb * max(0, grid.npcol - 1)),
                )
            )
            if cols_local > 0:
                tr = KernelLaunch(
                    KernelKind.GEMM,
                    routine_name("trsm", fmt),
                    flops=float(cols_local) * jb * jb,
                    nbytes=float(e * (jb * jb / 2 + 2 * jb * cols_local)),
                    fmt=fmt,
                )
                execute_kernel(tr.name, tr, None)
                upd = KernelLaunch.gemm(
                    max(0, rows_local - jb),
                    cols_local,
                    jb,
                    fmt=fmt,
                    name=routine_name("gemm", fmt),
                )
                if upd.flops > 0:
                    execute_kernel(upd.name, upd, None)
        if ctx.compute_numerics:
            # Reference factorization for correctness checks, computed
            # directly (uninstrumented) — the distribution affects timing,
            # never values, so the serial result is the oracle.
            import scipy.linalg

            lu, piv_seq = scipy.linalg.lu_factor(am)
            return lu, piv_seq
    return None, None

"""BLAS level 3: matrix-matrix operations.

``gemm`` is the star of the paper.  Its numerics follow the compute
format: fp64/fp32 run natively; fp16 runs with matrix-engine semantics
(operands rounded to binary16, fp32 accumulation) via
:class:`repro.precision.megemm.MatrixEngineGemm`, matching what
``cublasGemmEx`` does on Tensor Cores.  ``trsm``/``syrk`` are the
non-GEMM level-3 routines the classifier buckets as *BLAS* (they appear
in HPL's and Cholesky's call trees).
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.blas.dispatch import as_matrix, execute_kernel, routine_name
from repro.precision.formats import FP16, FP32, BF16, parse_format
from repro.precision.megemm import MatrixEngineGemm
from repro.sim.kernels import KernelKind, KernelLaunch

__all__ = ["gemm", "trsm", "syrk"]

_HYBRID_ENGINES = {
    "fp16": MatrixEngineGemm(FP16, FP32),
    "bf16": MatrixEngineGemm(BF16, FP32),
}


def _gemm_numeric(a: np.ndarray, b: np.ndarray, fmt: str) -> np.ndarray:
    """Arithmetic matching the format: native for fp64; format-rounded for
    narrower multiplies."""
    if fmt == "fp64":
        return a @ b
    if fmt == "fp32" or fmt == "tf32":
        fmt_obj = parse_format("fp32" if fmt == "fp32" else "tf32")
        aq = fmt_obj.quantize(a)
        bq = fmt_obj.quantize(b)
        return (aq.astype(np.float32) @ bq.astype(np.float32)).astype(np.float64)
    if fmt in _HYBRID_ENGINES:
        return _HYBRID_ENGINES[fmt](a, b)
    return a @ b


def gemm(
    a: np.ndarray,
    b: np.ndarray,
    *,
    c: np.ndarray | None = None,
    alpha: float = 1.0,
    beta: float = 0.0,
    fmt: str = "fp64",
    unit: str | None = None,
    tag: str = "",
) -> np.ndarray | None:
    """``C := alpha*A@B + beta*C`` with format-faithful numerics.

    ``fmt="fp16"`` reproduces a hybrid matrix engine (HGEMM on Tensor
    Cores); the simulated kernel auto-selects the ME when the context
    allows it, or the CUDA/SIMD path otherwise.
    """
    am, bm = as_matrix(a, "a"), as_matrix(b, "b")
    m, k_dim = am.shape
    n = bm.shape[1]
    name = routine_name("gemm", fmt)
    kernel = KernelLaunch.gemm(m, n, k_dim, fmt=fmt, name=name, unit=unit, tag=tag)

    def compute() -> np.ndarray:
        out = _gemm_numeric(am, bm, fmt)
        if alpha != 1.0:
            out = alpha * out
        if beta != 0.0 and c is not None:
            out = out + beta * as_matrix(c, "c")
        return out

    result, _ = execute_kernel(name, kernel, compute)
    return result


def trsm(
    a: np.ndarray,
    b: np.ndarray,
    *,
    side: str = "left",
    lower: bool = True,
    unit_diagonal: bool = False,
    fmt: str = "fp64",
    tag: str = "",
) -> np.ndarray | None:
    """Triangular solve with multiple right-hand sides (dtrsm).

    ``side="left"`` solves ``A X = B`` (A is m x m, B is m x n);
    ``side="right"`` solves ``X A = B`` (A is n x n).
    """
    am, bm = as_matrix(a, "a"), as_matrix(b, "b")
    m, n = bm.shape
    flops = float(n * m * m) if side == "left" else float(m * n * n)
    e = KernelLaunch.element_bytes(fmt)
    dim = m if side == "left" else n
    name = routine_name("trsm", fmt)
    kernel = KernelLaunch(
        KernelKind.GEMM,  # trsm has GEMM-like blocking and intensity …
        name,  # … but the classifier buckets by *name* => BLAS.
        flops=flops,
        nbytes=float(e * (dim * dim / 2 + 2 * m * n)),
        fmt=fmt,
        tag=tag,
    )

    def compute() -> np.ndarray:
        if side == "left":
            return scipy.linalg.solve_triangular(
                am, bm, lower=lower, unit_diagonal=unit_diagonal
            )
        return scipy.linalg.solve_triangular(
            am.T, bm.T, lower=not lower, unit_diagonal=unit_diagonal
        ).T

    result, _ = execute_kernel(name, kernel, compute)
    return result


def syrk(
    a: np.ndarray,
    *,
    c: np.ndarray | None = None,
    alpha: float = 1.0,
    beta: float = 0.0,
    fmt: str = "fp64",
    tag: str = "",
) -> np.ndarray | None:
    """Symmetric rank-k update ``C := alpha*A@A^T + beta*C`` (dsyrk)."""
    am = as_matrix(a, "a")
    n, k_dim = am.shape
    e = KernelLaunch.element_bytes(fmt)
    name = routine_name("syrk", fmt)
    kernel = KernelLaunch(
        KernelKind.GEMM,
        name,
        flops=float(n * n * k_dim),  # half of full GEMM: symmetry
        nbytes=float(e * (n * k_dim + n * n)),
        fmt=fmt,
        tag=tag,
    )

    def compute() -> np.ndarray:
        out = alpha * (am @ am.T)
        if beta != 0.0 and c is not None:
            out = out + beta * as_matrix(c, "c")
        return out

    result, _ = execute_kernel(name, kernel, compute)
    return result

"""Zero-FLOP stand-in matrices for shape-only (non-numeric) runs.

When ``compute_numerics`` is off, the instrumented BLAS only needs
operand *shapes* to price and profile a kernel — the data is never
touched.  :func:`zero_stub` is the one shared way to make such an
operand: a broadcast view of a single zero with the right shape and
effectively no memory, used by the harness figure/table generators, the
strong-scaling sweep, and the blocked LAPACK routines alike.
"""

from __future__ import annotations

import numpy as np

__all__ = ["zero_stub"]


def zero_stub(m: int, n: int | None = None) -> np.ndarray:
    """An ``(m, n)`` (square when ``n`` is omitted) zero matrix view.

    The result is read-only and aliases one float — callers must treat
    it as an opaque shape carrier, never write to it.
    """
    return np.broadcast_to(np.zeros(1), (m, m if n is None else n))

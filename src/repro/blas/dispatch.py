"""Dispatch plumbing shared by every BLAS routine.

``execute_kernel`` is the single choke point: it opens the profiler
region (when a profiler is attached to the execution context), launches
the priced kernel, and runs the NumPy arithmetic when numerics are
enabled.  Keeping one choke point means the "Score-P wrapper" behaviour
is uniform across all ~25 routines.
"""

from __future__ import annotations

from typing import Callable, TypeVar

import numpy as np

from repro.errors import DispatchError
from repro.sim.context import current_context
from repro.sim.kernels import KernelLaunch
from repro.sim.trace import KernelRecord

__all__ = ["routine_name", "execute_kernel", "as_matrix", "as_vector"]

T = TypeVar("T")

_PREFIX = {"fp64": "d", "fp32": "s", "fp16": "h", "bf16": "b", "tf32": "t"}


def routine_name(base: str, fmt: str) -> str:
    """Classic BLAS routine name: ``routine_name("gemm", "fp64")`` ->
    ``"dgemm"``."""
    try:
        return _PREFIX[fmt] + base
    except KeyError:
        raise DispatchError(f"no BLAS prefix for format {fmt!r}") from None


def execute_kernel(
    name: str,
    kernel: KernelLaunch,
    compute: Callable[[], T] | None = None,
) -> tuple[T | None, KernelRecord]:
    """Run one BLAS call: region + simulated kernel + optional numerics.

    Returns ``(result, record)`` where ``result`` is ``None`` when the
    context disables numerics or no ``compute`` callable was given.
    """
    ctx = current_context()
    prof = ctx.profiler
    if prof is not None:
        with prof.region(name):
            record = ctx.launch(kernel)
    else:
        record = ctx.launch(kernel)
    result: T | None = None
    if compute is not None and ctx.compute_numerics:
        result = compute()
    return result, record


def as_matrix(x: np.ndarray, arg: str) -> np.ndarray:
    """Validate a 2-D float operand (no copy for conforming input)."""
    a = np.asarray(x, dtype=np.float64)
    if a.ndim != 2:
        raise DispatchError(f"{arg} must be 2-D, got shape {a.shape}")
    return a


def as_vector(x: np.ndarray, arg: str) -> np.ndarray:
    """Validate a 1-D float operand (no copy for conforming input)."""
    v = np.asarray(x, dtype=np.float64)
    if v.ndim != 1:
        raise DispatchError(f"{arg} must be 1-D, got shape {v.shape}")
    return v

"""Package dependency graph (the Spack index abstraction)."""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.errors import GraphError

__all__ = ["Package", "DependencyGraph"]


@dataclass(frozen=True)
class Package:
    """One Spack package.

    ``provides_blas`` marks the paper's distance-0 set; ``language``
    is ``"py"``/``"r"`` for sub-packages (the Table III adjustment
    merges those under their parent project).
    """

    name: str
    depends_on: tuple[str, ...] = ()
    provides_blas: bool = False
    language: str | None = None

    @property
    def is_subpackage(self) -> bool:
        return self.language in ("py", "r")

    @property
    def base_name(self) -> str:
        """Name with the language prefix stripped (merge target)."""
        if self.language and self.name.startswith(self.language + "-"):
            return self.name[len(self.language) + 1 :]
        return self.name


class DependencyGraph:
    """A validated package index with dependency edges ``pkg -> dep``."""

    def __init__(self, packages: dict[str, Package]) -> None:
        self.packages = dict(packages)
        g = nx.DiGraph()
        g.add_nodes_from(self.packages)
        for pkg in self.packages.values():
            for dep in pkg.depends_on:
                if dep not in self.packages:
                    raise GraphError(
                        f"package {pkg.name!r} depends on unknown {dep!r}"
                    )
                if dep == pkg.name:
                    raise GraphError(f"package {pkg.name!r} depends on itself")
                g.add_edge(pkg.name, dep)
        self.graph = g

    def __len__(self) -> int:
        return len(self.packages)

    @property
    def blas_providers(self) -> tuple[str, ...]:
        """The distance-0 set, sorted."""
        return tuple(
            sorted(p.name for p in self.packages.values() if p.provides_blas)
        )

    def dependents_view(self) -> "nx.DiGraph":
        """Reversed edges: dep -> dependent (BFS frontier direction)."""
        return self.graph.reverse(copy=False)

    def merged_subpackages(self) -> "DependencyGraph":
        """Contract py-*/r-* sub-packages into their parent projects.

        A sub-package whose base name exists in the index is unioned
        into it (dependencies transferred, self-loops dropped); orphan
        sub-packages fold into their interpreter package (``python`` /
        ``r-base``) when present — the paper merges every py-*/R-*
        package "under their parent packages" the same way.
        """
        interpreter = {"py": "python", "r": "r-base"}
        merge_map: dict[str, str] = {}
        for pkg in self.packages.values():
            if not pkg.is_subpackage or pkg.provides_blas:
                # Providers stay distinct: the paper counts 14 distance-0
                # packages in both columns (py-blis included).
                continue
            if pkg.base_name in self.packages:
                merge_map[pkg.name] = pkg.base_name
            else:
                parent = interpreter.get(pkg.language or "", "")
                if parent in self.packages:
                    merge_map[pkg.name] = parent

        def target(name: str) -> str:
            return merge_map.get(name, name)

        merged: dict[str, set[str]] = {}
        provides: dict[str, bool] = {}
        language: dict[str, str | None] = {}
        for pkg in self.packages.values():
            t = target(pkg.name)
            deps = merged.setdefault(t, set())
            deps.update(target(d) for d in pkg.depends_on)
            provides[t] = provides.get(t, False) or pkg.provides_blas
            if t == pkg.name:
                language[t] = pkg.language
            language.setdefault(t, pkg.language)
        out = {
            name: Package(
                name=name,
                depends_on=tuple(sorted(d for d in deps if d != name)),
                provides_blas=provides[name],
                language=language.get(name),
            )
            for name, deps in merged.items()
        }
        return DependencyGraph(out)

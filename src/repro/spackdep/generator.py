"""Seeded Spack-shaped synthetic package index.

The generator reproduces the structure Table III measures on the real
Spack 0.15.1 index:

* 4,371 packages with the 14 actual dense-linear-algebra provider names;
* dependency shells sized to the published histogram — 239 packages at
  distance 1, 762 at 2, 968 at 3, ~1,100 deeper, the rest unreachable;
* a large py-*/r-* sub-package population that is *overwhelmingly
  reachable* (everything in the Python/R ecosystems sits atop
  py-numpy-like chains), which is exactly why the paper's
  "excluding py-* & R-*" column drops from 70 % to 51 % reachable;
* ``python`` / ``r-base`` interpreter packages that orphan sub-packages
  merge into.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.harness.cache import memoize_substrate
from repro.spackdep.graph import DependencyGraph, Package

__all__ = ["BLAS_PROVIDERS", "generate_spack_index"]

#: The paper's distance-0 set (Sec. III-B), verbatim.
BLAS_PROVIDERS: tuple[str, ...] = (
    "amdblis",
    "atlas",
    "blis",
    "eigen",
    "essl",
    "intel-mkl",
    "netlib-lapack",
    "netlib-scalapack",
    "netlib-xblas",
    "openblas",
    "cuda",
    "py-blis",
    "libxsmm",
    "veclibfort",
)

#: Packages per dependency shell (distance 1, 2, 3, then deeper shells).
_SHELL_SIZES = (239, 762, 968, 520, 340, 172, 60)
_TOTAL_PACKAGES = 4371
#: Sub-package probability inside the reachable shells vs outside —
#: calibrated so the merged ("excluding py-*/r-*") reachable share lands
#: at the paper's 51.45 %.
_SUB_P_REACHABLE = 0.575
_SUB_P_INDEPENDENT = 0.05


@memoize_substrate("spack_index")
def generate_spack_index(
    *,
    total: int = _TOTAL_PACKAGES,
    seed: int = 20200715,
) -> DependencyGraph:
    """Build the synthetic index (deterministic for a given seed).

    Memoized as the ``spack_index`` substrate; treat the returned graph
    as read-only.
    """
    if total < sum(_SHELL_SIZES) + len(BLAS_PROVIDERS) + 2:
        raise GraphError(f"total={total} too small for the shell structure")
    rng = np.random.default_rng(seed)
    packages: dict[str, Package] = {}

    for name in BLAS_PROVIDERS:
        lang = "py" if name.startswith("py-") else None
        packages[name] = Package(name, provides_blas=True, language=lang)
    # Interpreter roots orphan sub-packages merge into.
    packages["python"] = Package("python")
    packages["r-base"] = Package("r-base")

    def _new_name(idx: int, sub_p: float) -> tuple[str, str | None]:
        r = rng.random()
        if r < sub_p * 0.78:
            return f"py-pkg{idx:04d}", "py"
        if r < sub_p:
            return f"r-pkg{idx:04d}", "r"
        return f"pkg{idx:04d}", None

    shells: list[list[str]] = [list(BLAS_PROVIDERS)]
    idx = 0
    for size in _SHELL_SIZES:
        shell: list[str] = []
        prev = shells[-1]
        for _ in range(size):
            name, lang = _new_name(idx, _SUB_P_REACHABLE)
            idx += 1
            # Depend on 1-3 packages of the previous shell, which pins the
            # BFS distance; sibling links within the shell are harmless.
            n_deps = int(rng.integers(1, 4))
            deps = set(
                rng.choice(prev, size=min(n_deps, len(prev)),
                           replace=False).tolist()
            )
            if shell and rng.random() < 0.25:
                deps.add(str(rng.choice(shell)))
            if lang == "py":
                deps.add("python")
            elif lang == "r":
                deps.add("r-base")
            packages[name] = Package(
                name, depends_on=tuple(sorted(deps)), language=lang
            )
            shell.append(name)
        shells.append(shell)

    # Unreachable remainder: no path to any BLAS provider.
    independent: list[str] = []
    while len(packages) < total:
        name, lang = _new_name(idx, _SUB_P_INDEPENDENT)
        idx += 1
        deps: set[str] = set()
        if independent and rng.random() < 0.5:
            k = int(rng.integers(1, 3))
            deps.update(
                rng.choice(independent, size=min(k, len(independent)),
                           replace=False).tolist()
            )
        if lang == "py":
            deps.add("python")
        elif lang == "r":
            deps.add("r-base")
        packages[name] = Package(
            name, depends_on=tuple(sorted(deps)), language=lang
        )
        independent.append(name)

    return DependencyGraph(packages)

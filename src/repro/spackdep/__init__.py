"""Spack dependency-analysis substrate (Table III).

The paper walks Spack 0.15.1's package index: 14 packages *provide*
dense linear algebra (BLAS "distance 0"), and successive dependency
shells measure how much of the ecosystem could even reach a matrix
engine through a library.  We rebuild that experiment on a synthetic,
seeded package index shaped like Spack's (4,371 packages, the real 14
BLAS provider names, py-*/r-* sub-package skew) and run the *real*
analysis: multi-source BFS over the reversed dependency DAG, with and
without merging language sub-packages into their parents.
"""

from repro.spackdep.graph import DependencyGraph, Package
from repro.spackdep.generator import BLAS_PROVIDERS, generate_spack_index
from repro.spackdep.analysis import DistanceTable, dependency_distances

__all__ = [
    "Package",
    "DependencyGraph",
    "BLAS_PROVIDERS",
    "generate_spack_index",
    "DistanceTable",
    "dependency_distances",
]

"""Dependency-distance analysis: regenerate Table III.

Distance of a package = length of its shortest dependency path to any
BLAS provider (multi-source BFS on the reversed DAG).  The table
reports, per distance, the package count and its share of the index —
once raw and once after merging py-*/r-* sub-packages into their parent
projects.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.spackdep.graph import DependencyGraph

__all__ = ["DistanceTable", "dependency_distances"]


@dataclass(frozen=True)
class DistanceTable:
    """Histogram of BLAS dependency distances over one index."""

    total_packages: int
    counts: dict[int, int]  # exact distance -> package count

    def count_at(self, distance: int) -> int:
        return self.counts.get(distance, 0)

    def percent_at(self, distance: int) -> float:
        return 100.0 * self.count_at(distance) / self.total_packages

    @property
    def reachable(self) -> int:
        """Packages at distance >= 1 (the table's "1-∞" row)."""
        return sum(c for d, c in self.counts.items() if d >= 1)

    @property
    def reachable_percent(self) -> float:
        return 100.0 * self.reachable / self.total_packages

    @property
    def max_distance(self) -> int:
        return max(self.counts) if self.counts else 0


def dependency_distances(graph: DependencyGraph) -> DistanceTable:
    """Multi-source BFS from the BLAS providers along reversed edges."""
    sources = list(graph.blas_providers)
    rev = graph.dependents_view()
    lengths = nx.multi_source_dijkstra_path_length(rev, sources, weight=None)
    counts: dict[int, int] = {}
    for dist in lengths.values():
        d = int(dist)
        counts[d] = counts.get(d, 0) + 1
    return DistanceTable(total_packages=len(graph), counts=counts)

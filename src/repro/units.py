"""Unit helpers: flop, byte, time, power and energy quantities.

The paper reports results in a mix of units — Tflop/s for peak rates,
Gflop/s/mm^2 for compute density, Gflop/J for energy efficiency, walltime
seconds, and Watts.  This module centralises the conversion constants and
the pretty-printers used by the harness so that every table renders with
the same conventions as the paper.

All internal computation in the library uses *base SI units*: flop,
bytes, seconds, Watts, Joules.  Prefixed values only appear at the
formatting boundary.
"""

from __future__ import annotations

import math

__all__ = [
    "KILO",
    "MEGA",
    "GIGA",
    "TERA",
    "PETA",
    "KIB",
    "MIB",
    "GIB",
    "gemm_flops",
    "gemv_flops",
    "axpy_flops",
    "dot_flops",
    "format_si",
    "format_flops",
    "format_rate",
    "format_bytes",
    "format_time",
    "format_percent",
]

KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12
PETA = 1e15

KIB = 1024.0
MIB = 1024.0**2
GIB = 1024.0**3


def gemm_flops(m: int, n: int, k: int) -> float:
    """Flop count of ``C += A @ B`` for A(m×k), B(k×n).

    Uses the conventional ``2·m·n·k`` count (one multiply + one add per
    inner-product element), matching the paper's ``2·n^3`` for square
    GEMM.
    """
    return 2.0 * m * n * k


def gemv_flops(m: int, n: int) -> float:
    """Flop count of a dense matrix-vector product ``y += A @ x``."""
    return 2.0 * m * n


def axpy_flops(n: int) -> float:
    """Flop count of ``y += a*x`` (BLAS-1 axpy)."""
    return 2.0 * n


def dot_flops(n: int) -> float:
    """Flop count of an inner product of length ``n``."""
    return 2.0 * n


_SI_PREFIXES = [
    (PETA, "P"),
    (TERA, "T"),
    (GIGA, "G"),
    (MEGA, "M"),
    (KILO, "k"),
    (1.0, ""),
]


def format_si(value: float, unit: str, *, digits: int = 2) -> str:
    """Render ``value`` with an SI prefix, e.g. ``format_si(1.25e13, 'flop/s')
    -> '12.50 Tflop/s'``.

    Zero, negative and non-finite values are rendered without a prefix.
    """
    if not math.isfinite(value) or value <= 0.0:
        return f"{value:.{digits}f} {unit}"
    for factor, prefix in _SI_PREFIXES:
        if value >= factor:
            return f"{value / factor:.{digits}f} {prefix}{unit}"
    return f"{value:.{digits}e} {unit}"


def format_flops(flops: float, *, digits: int = 2) -> str:
    """Render a flop *count* (e.g. ``7.50 Tflop``)."""
    return format_si(flops, "flop", digits=digits)


def format_rate(flops_per_s: float, *, digits: int = 2) -> str:
    """Render a flop *rate* (e.g. ``125.00 Tflop/s``)."""
    return format_si(flops_per_s, "flop/s", digits=digits)


def format_bytes(nbytes: float, *, digits: int = 2) -> str:
    """Render a byte count using binary prefixes (KiB/MiB/GiB)."""
    if not math.isfinite(nbytes) or nbytes < 0:
        return f"{nbytes} B"
    for factor, prefix in [(GIB, "GiB"), (MIB, "MiB"), (KIB, "KiB")]:
        if nbytes >= factor:
            return f"{nbytes / factor:.{digits}f} {prefix}"
    return f"{nbytes:.0f} B"


def format_time(seconds: float, *, digits: int = 2) -> str:
    """Render a duration; switches to ms/us below one second."""
    if not math.isfinite(seconds):
        return f"{seconds} s"
    if seconds >= 1.0 or seconds == 0.0:
        return f"{seconds:.{digits}f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.{digits}f} ms"
    return f"{seconds * 1e6:.{digits}f} us"


def format_percent(fraction: float, *, digits: int = 2) -> str:
    """Render a 0..1 fraction as a percentage string."""
    return f"{fraction * 100.0:.{digits}f}%"

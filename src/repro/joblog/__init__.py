"""K-computer accounting substrate (Sec. III-A).

RIKEN's operations database stores, for every MPI job, the application
binary's symbol table (collected with ``nm``, shared libraries
excluded).  The paper greps one year of records — 487,563 jobs over
543 million node-hours (Apr '18 – Mar '19) — for GEMM symbols and
attributes 53.4 % of the covered node-hours to applications that *could*
have executed GEMM.  This package rebuilds the pipeline: a seeded job
population with domain-dependent linkage statistics, an nm-style symbol
model, and the attribution analysis.
"""

from repro.joblog.records import JobRecord, SymbolTable, looks_like_gemm_symbol
from repro.joblog.generator import KComputerYear, generate_k_year
from repro.joblog.analysis import (
    GemmAttribution,
    attribute_gemm_node_hours,
    estimate_energy_savings,
)

__all__ = [
    "JobRecord",
    "SymbolTable",
    "looks_like_gemm_symbol",
    "KComputerYear",
    "generate_k_year",
    "GemmAttribution",
    "attribute_gemm_node_hours",
    "estimate_energy_savings",
]

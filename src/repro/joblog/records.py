"""Job records and binary symbol tables."""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = ["SymbolTable", "JobRecord", "looks_like_gemm_symbol"]

#: nm-visible names that indicate GEMM capability.  Fujitsu's compiler
#: links individual math-kernel functions selectively (the paper's
#: footnote 5), so a single ``dgemm_`` entry is meaningful.
_GEMM_SYMBOL = re.compile(
    r"(^|_)([sdczh]gemm|gemm_kernel|matmul)", re.IGNORECASE
)


def looks_like_gemm_symbol(symbol: str) -> bool:
    """Would the paper's nm grep flag this symbol as GEMM?"""
    return _GEMM_SYMBOL.search(symbol) is not None


@dataclass(frozen=True)
class SymbolTable:
    """The nm output of one application binary (shared libs excluded)."""

    symbols: frozenset[str]

    def has_gemm(self) -> bool:
        return any(looks_like_gemm_symbol(s) for s in self.symbols)

    def __len__(self) -> int:
        return len(self.symbols)


@dataclass(frozen=True)
class JobRecord:
    """One accounting entry of the operations database.

    ``symbols`` is None for the ~4 % of node-hours where collection was
    disabled (interactive jobs, non-MPI jobs, opted-out users).
    """

    job_id: int
    app_name: str
    domain: str
    node_hours: float
    symbols: SymbolTable | None

    @property
    def has_symbol_data(self) -> bool:
        return self.symbols is not None

    @property
    def gemm_linked(self) -> bool:
        """True when the binary's symbol table contains a GEMM symbol."""
        return self.symbols is not None and self.symbols.has_gemm()

"""GEMM node-hour attribution (the Sec. III-A analysis)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.joblog.records import JobRecord

__all__ = ["GemmAttribution", "attribute_gemm_node_hours"]


@dataclass(frozen=True)
class GemmAttribution:
    """Result of grepping the year's symbol tables for GEMM."""

    total_node_hours: float
    covered_node_hours: float
    gemm_node_hours: float
    total_jobs: int
    gemm_jobs: int

    @property
    def coverage(self) -> float:
        """Node-hour fraction with symbol data (paper: 96 %)."""
        if self.total_node_hours <= 0:
            return 0.0
        return self.covered_node_hours / self.total_node_hours

    @property
    def gemm_fraction(self) -> float:
        """GEMM-linked share of *covered* node-hours (paper: 53.4 %)."""
        if self.covered_node_hours <= 0:
            return 0.0
        return self.gemm_node_hours / self.covered_node_hours

    @property
    def best_case_halving(self) -> bool:
        """The paper's headline: 'in the absolute best case, the
        inclusion of MEs could have halved the number of node hours' —
        true when the GEMM-linked share is about one half."""
        return 0.4 <= self.gemm_fraction <= 0.65


def estimate_energy_savings(
    attribution: GemmAttribution,
    *,
    node_power_w: float = 153.0,
    gemm_runtime_share: float = 0.25,
    me_speedup: float = 4.0,
) -> dict[str, float]:
    """Sec. III-A's energy angle: "a significant reduction in energy
    consumption (and, possibly, repair-costs)".

    The symbol analysis only shows which jobs *could* run GEMM; to turn
    that into Joules we need an assumed average GEMM runtime share
    within those jobs (``gemm_runtime_share``; the paper's own Fig. 3
    average for GEMM-positive apps is ~25 %) and a node power
    (K computer: 12.7 MW over 82,944 nodes ~ 153 W).

    Returns node-hours saved, MWh saved, and the machine-level fraction.
    """
    if node_power_w <= 0 or not 0 <= gemm_runtime_share <= 1:
        raise ValueError("bad node power or runtime share")
    from repro.extrapolate.model import amdahl_time_fraction

    per_job_saving = 1.0 - amdahl_time_fraction(gemm_runtime_share, me_speedup)
    node_hours_saved = attribution.gemm_node_hours * per_job_saving
    return {
        "node_hours_saved": node_hours_saved,
        "mwh_saved": node_hours_saved * node_power_w / 1e6,
        "machine_fraction": (
            node_hours_saved / attribution.total_node_hours
            if attribution.total_node_hours
            else 0.0
        ),
    }


def attribute_gemm_node_hours(
    jobs: Iterable[JobRecord],
) -> GemmAttribution:
    """Aggregate GEMM-linkage over a job population."""
    total = covered = gemm = 0.0
    n_jobs = n_gemm = 0
    for job in jobs:
        n_jobs += 1
        total += job.node_hours
        if job.has_symbol_data:
            covered += job.node_hours
            if job.gemm_linked:
                gemm += job.node_hours
                n_gemm += 1
    return GemmAttribution(
        total_node_hours=total,
        covered_node_hours=covered,
        gemm_node_hours=gemm,
        total_jobs=n_jobs,
        gemm_jobs=n_gemm,
    )

"""Seeded year-of-K-computer job population.

Shaped by the published statistics: 487,563 jobs, 543 million node-
hours, the K-computer domain mix (45 % material science, 23 % chemistry,
13 % geoscience, 12 % biology, 6.5 % physics, 0.5 % other — the Fig. 4a
breakdown), symbol data covering 96 % of node-hours, and per-domain
BLAS-linkage probabilities CALIBRATED so GEMM-linked node-hours land at
the measured 53.4 %.

Scaling ``jobs`` down produces a statistically identical smaller
population for fast tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.harness.cache import memoize_substrate
from repro.joblog.records import JobRecord, SymbolTable

__all__ = ["KComputerYear", "generate_k_year", "K_DOMAIN_MIX"]

#: Node-hour share per science domain (K computer annual report).
K_DOMAIN_MIX: dict[str, float] = {
    "Material Science": 0.45,
    "Chemistry": 0.23,
    "Geoscience": 0.13,
    "Biology": 0.12,
    "Physics": 0.065,
    "Other": 0.005,
}

#: Node-hour share per domain spent in GEMM-linked binaries —
#: CALIBRATED: the domain-weighted mean must hit the measured 53.4 %.
#: Chemistry and material-science codes (quantum chemistry, DFT) link
#: math kernels almost always; bio/geo pipelines rarely do.
_GEMM_LINK_P: dict[str, float] = {
    "Material Science": 0.565,
    "Chemistry": 0.78,
    "Geoscience": 0.22,
    "Biology": 0.28,
    "Physics": 0.55,
    "Other": 0.40,
}

_COVERAGE = 0.96  # symbol data available for 96 % of node-hours

_BASE_SYMBOLS = (
    "main", "mpi_init_", "mpi_finalize_", "solver_step_", "read_input_",
    "write_restart_", "timestep_", "exchange_halo_",
)
_GEMM_SYMBOLS = ("dgemm_", "sgemm_", "fjblas_gemm_kernel", "zgemm_")


@dataclass(frozen=True)
class KComputerYear:
    """The generated population plus its nominal totals."""

    jobs: tuple[JobRecord, ...]
    nominal_jobs: int
    nominal_node_hours: float

    @property
    def total_node_hours(self) -> float:
        return sum(j.node_hours for j in self.jobs)


@memoize_substrate("k_year")
def generate_k_year(
    *,
    jobs: int = 20_000,
    nominal_jobs: int = 487_563,
    nominal_node_hours: float = 543_000_000.0,
    seed: int = 20180401,
) -> KComputerYear:
    """Generate a (scaled) year of job records.

    ``jobs`` controls the sample size actually materialised; node-hours
    are scaled so the population totals ``nominal_node_hours``.

    Memoized as the ``k_year`` substrate: the returned population is
    frozen, so every artefact (and test) asking for the same parameters
    shares one instance.
    """
    rng = np.random.default_rng(seed)
    domains = list(K_DOMAIN_MIX)
    shares = np.array([K_DOMAIN_MIX[d] for d in domains])

    # Node-hours are heavy-tailed: lognormal sizes, then normalised per
    # domain so the domain mix holds exactly in expectation.
    domain_idx = rng.choice(len(domains), size=jobs, p=shares / shares.sum())
    raw = rng.lognormal(mean=0.0, sigma=1.6, size=jobs)
    node_hours = np.empty(jobs)
    for i, d in enumerate(domains):
        mask = domain_idx == i
        if not mask.any():
            continue
        target = nominal_node_hours * K_DOMAIN_MIX[d]
        node_hours[mask] = raw[mask] * (target / raw[mask].sum())

    covered = rng.random(jobs) < _COVERAGE
    # Mark jobs as GEMM-linked so that each domain's *node-hour* share of
    # linked work hits its calibrated target regardless of sample size —
    # a random permutation decides which jobs carry the linkage, so the
    # population stays varied while the aggregate is stable.
    linked = np.zeros(jobs, dtype=bool)
    for i, d in enumerate(domains):
        mask_idx = np.flatnonzero(domain_idx == i)
        if mask_idx.size == 0:
            continue
        order = rng.permutation(mask_idx)
        target = _GEMM_LINK_P[d] * node_hours[mask_idx].sum()
        cum = np.cumsum(node_hours[order])
        linked[order[cum <= target]] = True

    records = []
    for i in range(jobs):
        domain = domains[domain_idx[i]]
        if covered[i]:
            syms = set(_BASE_SYMBOLS)
            if linked[i]:
                syms.update(
                    rng.choice(_GEMM_SYMBOLS,
                               size=int(rng.integers(1, 3)),
                               replace=False).tolist()
                )
            table: SymbolTable | None = SymbolTable(frozenset(syms))
        else:
            table = None
        records.append(
            JobRecord(
                job_id=i,
                app_name=f"{domain.lower().replace(' ', '_')}_app{int(rng.integers(0, 400)):03d}",
                domain=domain,
                node_hours=float(node_hours[i]),
                symbols=table,
            )
        )
    return KComputerYear(
        jobs=tuple(records),
        nominal_jobs=nominal_jobs,
        nominal_node_hours=nominal_node_hours,
    )

"""Resolve declarative overlays into live model objects.

Turns a :class:`~repro.scenario.spec.DeviceOverlay` into a validated
:class:`~repro.hardware.specs.DeviceSpec` and a
:class:`~repro.scenario.spec.WorkloadOverlay` into a runnable
:class:`~repro.workloads.base.KernelMixWorkload`.  Resolution is pure
(spec in, model out); the registries cache resolved overlays per
scenario fingerprint so repeated lookups under one scenario cost a
dict hit.

Machine-mix overlays resolve in :mod:`repro.extrapolate.scenarios`,
next to the builders they edit.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.errors import DeviceError, ScenarioError
from repro.hardware.specs import (
    ComputeUnitSpec,
    DeviceSpec,
    MemorySpec,
    UnitKind,
)
from repro.scenario.spec import (
    DeviceOverlay,
    MemoryOverlay,
    ScenarioSpec,
    UnitOverlay,
    WorkloadOverlay,
)

__all__ = ["resolve_devices", "resolve_workloads"]

_UNIT_KINDS = {k.value: k for k in UnitKind}


def _merge_memory(base: MemorySpec | None, ov: MemoryOverlay | None) -> MemorySpec:
    if ov is None:
        if base is None:
            raise ScenarioError("new device needs a memory block")
        return base
    fields = {
        f.name: getattr(ov, f.name)
        for f in dataclasses.fields(MemoryOverlay)
        if getattr(ov, f.name) is not None
    }
    if base is not None:
        return dataclasses.replace(base, **fields)
    missing = {"capacity_bytes", "bandwidth_bps"} - set(fields)
    if missing:
        raise ScenarioError(
            f"new device memory block needs {sorted(missing)}"
        )
    return MemorySpec(**fields)


def _unit_fields(ov: UnitOverlay) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for f in dataclasses.fields(UnitOverlay):
        if f.name in ("name", "remove", "kind"):
            continue
        value = getattr(ov, f.name)
        if value is not None:
            out[f.name] = dict(value) if isinstance(value, dict) else value
    if ov.kind is not None:
        out["kind"] = _UNIT_KINDS[ov.kind]
    return out


def _merge_units(
    device_name: str,
    base: tuple[ComputeUnitSpec, ...],
    overlays: tuple[UnitOverlay, ...],
) -> tuple[ComputeUnitSpec, ...]:
    units = list(base)
    by_name = {u.name: i for i, u in enumerate(units)}
    for ov in overlays:
        if ov.remove:
            if ov.name not in by_name:
                raise ScenarioError(
                    f"device {device_name!r}: cannot remove unknown unit "
                    f"{ov.name!r}; has {sorted(by_name)}"
                )
            units[by_name[ov.name]] = None
            continue
        fields = _unit_fields(ov)
        if ov.name in by_name:
            idx = by_name[ov.name]
            units[idx] = dataclasses.replace(units[idx], **fields)
        else:
            if ov.kind is None or ov.peak_flops is None:
                raise ScenarioError(
                    f"device {device_name!r}: new unit {ov.name!r} needs "
                    "at least 'kind' and 'peak_flops'"
                )
            units.append(ComputeUnitSpec(name=ov.name, **fields))
            by_name[ov.name] = len(units) - 1
    kept = tuple(u for u in units if u is not None)
    if not kept:
        raise ScenarioError(f"device {device_name!r}: no compute units left")
    return kept


_DEVICE_SCALARS = (
    "vendor",
    "category",
    "process_nm",
    "die_mm2",
    "me_size",
    "tdp_w",
    "idle_w",
    "launch_latency_s",
    "year",
    "notes",
)


def _resolve_device(
    ov: DeviceOverlay, lookup_base: Any
) -> DeviceSpec:
    """Build one overlay device.  ``lookup_base(name)`` resolves a base
    spec (built-in catalogue or an earlier overlay in the same spec)."""
    base: DeviceSpec | None = None
    base_name = ov.base
    if base_name is None:
        base = lookup_base(ov.name)  # override-in-place when it exists
    else:
        base = lookup_base(base_name)
        if base is None:
            raise ScenarioError(
                f"device overlay {ov.name!r}: unknown base {base_name!r}"
            )
    scalars = {
        name: getattr(ov, name)
        for name in _DEVICE_SCALARS
        if getattr(ov, name) is not None
    }
    try:
        if base is not None:
            merged = dataclasses.replace(
                base,
                name=ov.name,
                memory=_merge_memory(base.memory, ov.memory),
                units=_merge_units(ov.name, base.units, ov.units),
                **scalars,
            )
        else:
            required = {"vendor", "category", "tdp_w", "idle_w"} - set(scalars)
            if required:
                raise ScenarioError(
                    f"new device {ov.name!r} needs {sorted(required)} "
                    "(or a 'base' to inherit from)"
                )
            scalars.setdefault("process_nm", None)
            scalars.setdefault("die_mm2", None)
            scalars.setdefault("me_size", None)
            merged = DeviceSpec(
                name=ov.name,
                memory=_merge_memory(None, ov.memory),
                units=_merge_units(ov.name, (), ov.units),
                **scalars,
            )
    except DeviceError as exc:  # spec-level validation failure
        raise ScenarioError(f"device overlay {ov.name!r}: {exc}") from exc
    return merged


def resolve_devices(spec: ScenarioSpec) -> dict[str, DeviceSpec]:
    """All overlay devices of ``spec``, resolved in declaration order.

    Later overlays may use earlier ones (or built-ins) as ``base``.
    """
    from repro.hardware import registry as hw_registry

    resolved: dict[str, DeviceSpec] = {}

    def lookup_base(name: str) -> DeviceSpec | None:
        if name in resolved:
            return resolved[name]
        return hw_registry.builtin_device(name)

    for ov in spec.devices:
        resolved[ov.name] = _resolve_device(ov, lookup_base)
    return resolved


def resolve_workloads(spec: ScenarioSpec) -> dict[str, Any]:
    """All overlay workloads of ``spec`` as runnable kernel-mix models,
    keyed by qualified ``SUITE/name``."""
    from repro.sim.kernels import KernelKind, KernelLaunch
    from repro.workloads.base import KernelMixWorkload, PhaseSpec, WorkloadMeta

    kinds = {k.value: k for k in KernelKind}
    out: dict[str, Any] = {}
    for ov in spec.workloads:
        phases = []
        for phase in ov.phases:
            kernels = []
            for kernel in phase.kernels:
                if kernel.kind not in kinds:
                    raise ScenarioError(
                        f"workload {ov.qualified_name!r}: unknown kernel "
                        f"kind {kernel.kind!r}; known: {sorted(kinds)}"
                    )
                kernels.append(
                    KernelLaunch(
                        kind=kinds[kernel.kind],
                        name=kernel.name,
                        flops=kernel.flops,
                        nbytes=kernel.nbytes,
                        fmt=kernel.fmt,
                    )
                )
            phases.append(
                PhaseSpec(
                    region=phase.region,
                    kernels=tuple(kernels),
                    repeat=phase.repeat,
                )
            )
        meta = WorkloadMeta(
            name=ov.name,
            suite=ov.suite,
            domain=ov.domain,
            description=ov.description,
        )
        out[ov.qualified_name] = KernelMixWorkload(
            meta, tuple(phases), iterations=ov.iterations
        )
    return out

"""repro.scenario — the typed, fingerprinted what-if overlay system.

The paper's contribution is a cost-benefit *methodology*; this package
makes the reproduction re-runnable under different assumptions without
forking code.  A :class:`ScenarioSpec` declares hypothetical devices,
extra workloads, edited machine mixes, extrapolation constants, and
substrate seeds; installing it with :func:`scenario_context` makes
every catalogue lookup, substrate computation, pipeline run, and serve
query resolve through the overlay.  The empty spec is the baseline and
changes nothing — byte-identical artefacts, untouched cache keys.

Every spec carries a canonical SHA-256 :attr:`ScenarioSpec.fingerprint`
(field order, defaults-vs-explicit, int/float, and inf spellings all
canonicalise), which joins substrate- and result-cache keys so distinct
what-ifs never share entries and a what-if never poisons the baseline.

>>> from repro.scenario import load_scenario, scenario_context
>>> from repro.hardware import get_device
>>> with scenario_context(load_scenario("examples/scenarios/int8_matrix_engine.json")):
...     get_device("v100-int8me").matrix_engine.name
'int8me'
"""

from repro.scenario.context import (
    active_cache_token,
    active_scenario,
    scenario_context,
)
from repro.scenario.io import (
    dump_scenario,
    load_scenario,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.scenario.spec import (
    EMPTY_SCENARIO,
    DeviceOverlay,
    DomainEdit,
    ExtrapolationOverlay,
    KernelEdit,
    MachineOverlay,
    MemoryOverlay,
    PhaseEdit,
    ScenarioSpec,
    UnitOverlay,
    WorkloadOverlay,
    canonical_scenario,
    scenario_fingerprint,
)

__all__ = [
    "ScenarioSpec",
    "EMPTY_SCENARIO",
    "DeviceOverlay",
    "MemoryOverlay",
    "UnitOverlay",
    "WorkloadOverlay",
    "PhaseEdit",
    "KernelEdit",
    "MachineOverlay",
    "DomainEdit",
    "ExtrapolationOverlay",
    "canonical_scenario",
    "scenario_fingerprint",
    "active_scenario",
    "active_cache_token",
    "scenario_context",
    "scenario_from_dict",
    "scenario_to_dict",
    "load_scenario",
    "dump_scenario",
]

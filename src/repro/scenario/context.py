"""The active-scenario context: one ambient :class:`ScenarioSpec`.

Mirrors :mod:`repro.sim.context`: a ``contextvars``-based stack, so
scenarios nest and never leak across threads or asyncio tasks.  The
resolution seams (device/workload registries, machine builders, the
substrate cache, the serve engine) all read the ambient spec through
:func:`active_scenario`; with nothing installed they see the empty
baseline spec and behave exactly as before the overlay system existed.

Because a fresh thread starts with an empty context, code that fans
work out (the artefact pipeline, the serve executor) must re-install
the spec in each worker — both do, capturing it once at entry.
"""

from __future__ import annotations

import contextlib
from contextvars import ContextVar
from typing import Iterator

from repro.scenario.spec import EMPTY_SCENARIO, ScenarioSpec

__all__ = [
    "active_scenario",
    "active_cache_token",
    "scenario_context",
]

_current: ContextVar[ScenarioSpec | None] = ContextVar(
    "repro_active_scenario", default=None
)


def active_scenario() -> ScenarioSpec:
    """The innermost installed spec, or the empty baseline."""
    spec = _current.get()
    return EMPTY_SCENARIO if spec is None else spec


def active_cache_token() -> str | None:
    """The ambient spec's cache-key component (``None`` for baseline)."""
    spec = _current.get()
    return None if spec is None else spec.cache_token


@contextlib.contextmanager
def scenario_context(spec: ScenarioSpec | None) -> Iterator[ScenarioSpec]:
    """Install ``spec`` as the active scenario for the enclosed block.

    ``None`` installs the empty baseline (useful for explicitly
    shielding a block from any ambient overlay).
    """
    resolved = EMPTY_SCENARIO if spec is None else spec
    token = _current.set(resolved)
    try:
        yield resolved
    finally:
        _current.reset(token)

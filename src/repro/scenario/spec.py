"""The typed scenario overlay: one :class:`ScenarioSpec` describes a
complete what-if — hypothetical devices, extra workloads, edited
machine mixes, extrapolation constants, substrate seeds — as data.

A spec is *declarative*: nothing here touches the catalogues.  The
consumers (:mod:`repro.hardware.registry`, :mod:`repro.workloads.registry`,
:mod:`repro.extrapolate.scenarios`, the harness cache, the serve layer)
resolve through the active spec installed by
:func:`repro.scenario.context.scenario_context`.

Every spec has a canonical SHA-256 **fingerprint** over its semantic
content (the ``name``/``description`` labels are excluded), computed
with the same canonicalization rules the serve layer applies to query
params — field order never matters, fields left at their defaults hash
identically to fields set explicitly, ints in float positions coerce,
and non-finite floats take their ``"inf"``/``"-inf"`` wire spelling.
The fingerprint is what keys every cache seam, so two spellings of the
same what-if always share work and two different what-ifs never do.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Mapping

from repro.errors import ScenarioError

__all__ = [
    "UnitOverlay",
    "MemoryOverlay",
    "DeviceOverlay",
    "KernelEdit",
    "PhaseEdit",
    "WorkloadOverlay",
    "DomainEdit",
    "MachineOverlay",
    "ExtrapolationOverlay",
    "ScenarioSpec",
    "EMPTY_SCENARIO",
    "canonical_scenario",
    "scenario_fingerprint",
]


def _astuple(value: Any) -> tuple:
    """Coerce list/tuple field input to a tuple (JSON arrives as lists)."""
    if isinstance(value, tuple):
        return value
    if isinstance(value, list):
        return tuple(value)
    raise ScenarioError(f"expected a sequence, got {type(value).__name__}")


@dataclass(frozen=True)
class UnitOverlay:
    """Add, edit, or remove one compute unit of an overlaid device.

    A ``name`` matching an existing unit edits it (``None`` fields keep
    the base value); an unmatched name adds a new unit, which must then
    declare at least ``kind`` and ``peak_flops``.  ``remove=True`` drops
    the named unit instead.
    """

    name: str
    kind: str | None = None  # "scalar" | "vector" | "matrix"
    peak_flops: Mapping[str, float] | None = None
    gemm_efficiency: float | None = None
    active_power_w: Mapping[str, float] | None = None
    multiply_format: str | None = None
    accumulate_format: str | None = None
    tile: tuple[int, int, int] | None = None
    remove: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ScenarioError("unit overlay needs a non-empty name")
        if self.kind is not None and self.kind not in ("scalar", "vector", "matrix"):
            raise ScenarioError(
                f"unit {self.name!r}: kind must be scalar/vector/matrix, "
                f"got {self.kind!r}"
            )
        if self.tile is not None:
            object.__setattr__(self, "tile", tuple(int(x) for x in _astuple(self.tile)))


@dataclass(frozen=True)
class MemoryOverlay:
    """Field edits on a device's :class:`~repro.hardware.specs.MemorySpec`."""

    capacity_bytes: float | None = None
    bandwidth_bps: float | None = None
    host_link_bps: float | None = None
    active_power_w: float | None = None
    stream_efficiency: float | None = None


@dataclass(frozen=True)
class DeviceOverlay:
    """Add a hypothetical device or override an existing one.

    When ``name`` (or ``base``) names a catalogue device the overlay
    starts from that spec and ``None`` fields keep the base values; a
    novel ``name`` with no ``base`` defines the device from scratch and
    must supply ``vendor``, ``category``, ``tdp_w``, ``idle_w``, a
    ``memory`` block, and at least one unit.
    """

    name: str
    base: str | None = None
    vendor: str | None = None
    category: str | None = None
    process_nm: float | None = None
    die_mm2: float | None = None
    me_size: str | None = None
    tdp_w: float | None = None
    idle_w: float | None = None
    launch_latency_s: float | None = None
    year: int | None = None
    notes: str | None = None
    memory: MemoryOverlay | None = None
    units: tuple[UnitOverlay, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ScenarioError("device overlay needs a non-empty name")
        object.__setattr__(self, "units", _astuple(self.units))


@dataclass(frozen=True)
class KernelEdit:
    """One kernel launch of a declarative scenario workload."""

    kind: str  # KernelKind value, e.g. "gemm", "spmv", "memcpy"
    name: str
    flops: float = 0.0
    nbytes: float = 0.0
    fmt: str = "fp64"

    def __post_init__(self) -> None:
        if self.flops < 0 or self.nbytes < 0:
            raise ScenarioError(
                f"kernel {self.name!r}: flops and nbytes must be >= 0"
            )


@dataclass(frozen=True)
class PhaseEdit:
    """One profiled region of a declarative scenario workload."""

    region: str
    kernels: tuple[KernelEdit, ...] = ()
    repeat: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "kernels", _astuple(self.kernels))
        if self.repeat < 1:
            raise ScenarioError(f"phase {self.region!r}: repeat must be >= 1")
        if not self.kernels:
            raise ScenarioError(f"phase {self.region!r}: no kernels")


@dataclass(frozen=True)
class WorkloadOverlay:
    """A declarative kernel-mix workload added to the Table V catalogue.

    Resolved into a :class:`repro.workloads.base.KernelMixWorkload`;
    a ``SUITE/name`` matching a catalogue entry shadows it.
    """

    name: str
    suite: str = "WHATIF"
    domain: str = "Synthetic"
    description: str = ""
    iterations: int = 10
    phases: tuple[PhaseEdit, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ScenarioError("workload overlay needs a non-empty name")
        object.__setattr__(self, "phases", _astuple(self.phases))
        if not self.phases:
            raise ScenarioError(f"workload {self.name!r}: no phases")
        if self.iterations < 1:
            raise ScenarioError(f"workload {self.name!r}: iterations must be >= 1")

    @property
    def qualified_name(self) -> str:
        return f"{self.suite}/{self.name}"


@dataclass(frozen=True)
class DomainEdit:
    """Edit, add, or remove one science domain of a machine's mix.

    A new domain needs a ``share`` plus either an explicit
    ``accelerable`` fraction or a ``representative`` (qualified workload
    name, e.g. ``"RIKEN/NTChem"``) whose measured GEMM+(Sca)LAPACK
    fraction is used.
    """

    domain: str
    share: float | None = None
    representative: str | None = None
    accelerable: float | None = None
    remove: bool = False

    def __post_init__(self) -> None:
        if not self.domain:
            raise ScenarioError("domain edit needs a non-empty domain label")
        if self.share is not None and not 0.0 <= self.share <= 1.0:
            raise ScenarioError(f"{self.domain}: share out of range")
        if self.accelerable is not None and not 0.0 <= self.accelerable <= 1.0:
            raise ScenarioError(f"{self.domain}: accelerable out of range")


@dataclass(frozen=True)
class MachineOverlay:
    """Edit a built-in Fig. 4 machine mix or define a new one.

    ``name`` is the wire name (``"k_computer"``, ``"anl"``, ``"future"``,
    ``"fugaku"``, or a new name); new machines start from ``base`` (a
    built-in wire name) or, without one, entirely from ``domains``.
    ``renormalize`` rescales all shares to sum to one after the edits —
    how "add a 20 % AI slice" stays a valid mix.
    """

    name: str
    base: str | None = None
    display_name: str | None = None
    total_node_hours: float | None = None
    renormalize: bool = False
    domains: tuple[DomainEdit, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ScenarioError("machine overlay needs a non-empty name")
        object.__setattr__(self, "domains", _astuple(self.domains))


@dataclass(frozen=True)
class ExtrapolationOverlay:
    """Overrides of the extrapolation model's global constants."""

    other_gemm_assumption: float | None = None  # the paper's 10 % "other"
    bert_gemm_occupancy: float | None = None  # footnote 15's 83.2 %

    def __post_init__(self) -> None:
        for fname in ("other_gemm_assumption", "bert_gemm_occupancy"):
            v = getattr(self, fname)
            if v is not None and not 0.0 <= v <= 1.0:
                raise ScenarioError(f"{fname} out of range: {v}")


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete what-if overlay.

    The default spec is **empty**: it resolves every lookup to the
    built-in catalogues and keys every cache exactly as if no scenario
    machinery existed, so the baseline artefacts stay byte-identical.
    """

    name: str = ""
    description: str = ""
    devices: tuple[DeviceOverlay, ...] = ()
    workloads: tuple[WorkloadOverlay, ...] = ()
    machines: tuple[MachineOverlay, ...] = ()
    extrapolation: ExtrapolationOverlay = field(default_factory=ExtrapolationOverlay)
    substrate_seeds: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for fname in ("devices", "workloads", "machines"):
            object.__setattr__(self, fname, _astuple(getattr(self, fname)))
        for fname, keyof in (
            ("devices", lambda o: o.name),
            ("workloads", lambda o: o.qualified_name),
            ("machines", lambda o: o.name),
        ):
            names = [keyof(o) for o in getattr(self, fname)]
            if len(names) != len(set(names)):
                dupes = sorted({n for n in names if names.count(n) > 1})
                raise ScenarioError(f"duplicate {fname} overlay: {dupes}")
        for substrate, seed in dict(self.substrate_seeds).items():
            if isinstance(seed, bool) or not isinstance(seed, int):
                raise ScenarioError(
                    f"substrate seed for {substrate!r} must be an int, "
                    f"got {seed!r}"
                )

    @cached_property
    def fingerprint(self) -> str:
        """Canonical SHA-256 over the semantic content (labels excluded)."""
        return scenario_fingerprint(self)

    @property
    def is_empty(self) -> bool:
        """True when the spec changes nothing (pure baseline)."""
        return not (
            self.devices
            or self.workloads
            or self.machines
            or dict(self.substrate_seeds)
            or canonical_scenario(self).get("extrapolation")
        )

    @property
    def cache_token(self) -> str | None:
        """The component cache keys carry: ``None`` for the baseline (so
        baseline keys are exactly the pre-scenario ones), else the
        fingerprint — which is what keeps overlay entries disjoint."""
        return None if self.is_empty else self.fingerprint

    def label(self) -> str:
        """Human-readable identity for logs and manifests."""
        if self.is_empty:
            return "baseline"
        return self.name or self.fingerprint[:12]


#: The shared baseline spec (no overlay at all).
EMPTY_SCENARIO = ScenarioSpec()


# -- canonicalization --------------------------------------------------------


def _is_default(f: dataclasses.Field, value: Any) -> bool:
    if f.default is not dataclasses.MISSING:
        return value == f.default
    if f.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
        return value == f.default_factory()  # type: ignore[misc]
    return False


def _canon_float(value: float, where: str) -> Any:
    if math.isnan(value):
        raise ScenarioError(f"{where}: NaN is not allowed in a scenario spec")
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


def _canon(value: Any, annot: str = "", where: str = "scenario") -> Any:
    """Recursively canonicalise one field value.

    ``annot`` is the field's (string) type annotation: an int in a
    float-typed position coerces to float, so ``tdp_w=300`` and
    ``tdp_w=300.0`` fingerprint identically — the same int/float rule
    :meth:`repro.serve.queries.QueryKind.build_params` applies on the
    query wire.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        out = {}
        for f in dataclasses.fields(value):
            v = getattr(value, f.name)
            if _is_default(f, v):
                continue
            out[f.name] = _canon(v, str(f.type), f"{where}.{f.name}")
        return out
    if isinstance(value, Mapping):
        coerce = "float" in annot
        return {
            str(k): _canon(
                float(v) if coerce and isinstance(v, int) and not isinstance(v, bool) else v,
                "float" if coerce else "",
                f"{where}[{k}]",
            )
            for k, v in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [_canon(v, annot, where) for v in value]
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, float):
        return _canon_float(value, where)
    if isinstance(value, int):
        if "float" in annot:
            return float(value)
        return value
    raise ScenarioError(
        f"{where}: unsupported value {value!r} in a scenario spec"
    )


def canonical_scenario(spec: ScenarioSpec, *, include_label: bool = False) -> dict:
    """The spec as a canonical, JSON-encodable dict.

    Fields left at their defaults are omitted (defaults-vs-explicit
    identity); ``include_label`` keeps the ``name``/``description``
    labels, which the fingerprint excludes.
    """
    out = _canon(spec)
    if not include_label:
        out.pop("name", None)
        out.pop("description", None)
    # Prune semantically-empty sub-dicts (e.g. extrapolation at defaults).
    return {k: v for k, v in out.items() if v != {} and v != []}


def scenario_fingerprint(spec: ScenarioSpec) -> str:
    """SHA-256 of the canonical semantic encoding."""
    encoded = json.dumps(
        canonical_scenario(spec), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()

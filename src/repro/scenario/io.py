"""Scenario wire/file format: JSON <-> :class:`ScenarioSpec`.

The file format is the canonical dict shape of :mod:`repro.scenario.spec`
(see ``examples/scenarios/`` for worked files).  Construction is strict
— unknown keys are rejected with the accepted field list, exactly like
the serve layer's query validation — and wire-lenient: ints build
float fields, JSON lists build tuples, and the canonical ``"inf"`` /
``"-inf"`` strings build infinities, so a round-tripped canonical dict
reconstructs a spec with the identical fingerprint.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Mapping

from repro.errors import ScenarioError
from repro.scenario.spec import (
    DeviceOverlay,
    DomainEdit,
    ExtrapolationOverlay,
    KernelEdit,
    MachineOverlay,
    MemoryOverlay,
    PhaseEdit,
    ScenarioSpec,
    UnitOverlay,
    WorkloadOverlay,
    canonical_scenario,
)

__all__ = [
    "scenario_from_dict",
    "scenario_to_dict",
    "load_scenario",
    "dump_scenario",
]

#: Which field of which dataclass nests which overlay type.
_NESTED: dict[tuple[type, str], type] = {
    (ScenarioSpec, "devices"): DeviceOverlay,
    (ScenarioSpec, "workloads"): WorkloadOverlay,
    (ScenarioSpec, "machines"): MachineOverlay,
    (ScenarioSpec, "extrapolation"): ExtrapolationOverlay,
    (DeviceOverlay, "memory"): MemoryOverlay,
    (DeviceOverlay, "units"): UnitOverlay,
    (MachineOverlay, "domains"): DomainEdit,
    (WorkloadOverlay, "phases"): PhaseEdit,
    (PhaseEdit, "kernels"): KernelEdit,
}


def _coerce_float(value: Any, where: str) -> Any:
    if isinstance(value, bool):
        return value  # let the dataclass reject it
    if isinstance(value, int):
        return float(value)
    if isinstance(value, str):
        if value == "inf":
            return float("inf")
        if value == "-inf":
            return float("-inf")
        raise ScenarioError(f"{where}: expected a number, got {value!r}")
    return value


def _build(cls: type, data: Any, where: str) -> Any:
    if not isinstance(data, Mapping):
        raise ScenarioError(
            f"{where}: expected an object, got {type(data).__name__}"
        )
    fields = {f.name: f for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - set(fields))
    if unknown:
        raise ScenarioError(
            f"{where}: unknown key {unknown[0]!r}; accepts {sorted(fields)}"
        )
    kwargs: dict[str, Any] = {}
    for key, raw in data.items():
        f = fields[key]
        nested = _NESTED.get((cls, key))
        annot = str(f.type)
        if nested is not None and raw is not None:
            if isinstance(raw, list):
                raw = tuple(
                    _build(nested, item, f"{where}.{key}[{i}]")
                    for i, item in enumerate(raw)
                )
            else:
                raw = _build(nested, raw, f"{where}.{key}")
        elif isinstance(raw, Mapping) and "float" in annot:
            raw = {
                str(k): _coerce_float(v, f"{where}.{key}[{k}]")
                for k, v in raw.items()
            }
        elif "float" in annot and not isinstance(raw, Mapping):
            if isinstance(raw, list):
                pass  # e.g. tile-like sequences — no float coercion
            elif raw is not None:
                raw = _coerce_float(raw, f"{where}.{key}")
        kwargs[key] = raw
    try:
        return cls(**kwargs)
    except ScenarioError:
        raise
    except (TypeError, ValueError) as exc:
        raise ScenarioError(f"{where}: {exc}") from exc


def scenario_from_dict(data: Mapping[str, Any]) -> ScenarioSpec:
    """Construct and validate a spec from wire/file input."""
    return _build(ScenarioSpec, data, "scenario")


def scenario_to_dict(spec: ScenarioSpec) -> dict[str, Any]:
    """The spec's canonical dict, labels included (round-trips through
    :func:`scenario_from_dict` to the identical fingerprint)."""
    return canonical_scenario(spec, include_label=True)


def load_scenario(path: str | Path) -> ScenarioSpec:
    """Read a scenario overlay file (JSON)."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except OSError as exc:
        raise ScenarioError(f"cannot read scenario file {path}: {exc}") from exc
    except ValueError as exc:
        raise ScenarioError(f"scenario file {path} is not valid JSON: {exc}") from exc
    return scenario_from_dict(data)


def dump_scenario(spec: ScenarioSpec, path: str | Path) -> Path:
    """Write the canonical JSON form of ``spec`` to ``path``."""
    path = Path(path)
    path.write_text(json.dumps(scenario_to_dict(spec), indent=2, sort_keys=True) + "\n")
    return path

"""Sparse matrix-matrix multiplication on matrix engines (Sec. V-A2).

The paper's "other compute patterns" opportunity cites Zachariadis et
al.: fit occupied *tiles* of a sparse matrix into Tensor-Core fragments
and multiply tiles densely.  This module implements that algorithm for
real (scipy.sparse) matrices — tile extraction, occupied-tile-pair
products on the hybrid engine, result assembly — and prices both it and
a classic CSR SpGEMM on a simulated device, exposing the density
crossover at which the engine starts paying.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.errors import DeviceError
from repro.hardware.registry import get_device
from repro.hardware.specs import DeviceSpec
from repro.precision.formats import FP16, FP32
from repro.precision.megemm import MatrixEngineGemm
from repro.sim.engine import SimulatedDevice
from repro.sim.kernels import KernelKind, KernelLaunch

__all__ = ["TiledSpGemmResult", "tiled_spgemm", "spgemm_time_model",
           "crossover_density"]


@dataclass(frozen=True)
class TiledSpGemmResult:
    """Numerical result + cost accounting of one tiled SpGEMM."""

    c: sp.csr_matrix
    tile: int
    occupied_a: int
    occupied_b: int
    tile_products: int
    dense_tile_products_possible: int

    @property
    def product_fraction(self) -> float:
        """Share of the dense tile-product grid actually executed."""
        if self.dense_tile_products_possible == 0:
            return 0.0
        return self.tile_products / self.dense_tile_products_possible


def _occupied_tiles(m: sp.csr_matrix, tile: int) -> dict[tuple[int, int], np.ndarray]:
    """Map (tile_row, tile_col) -> dense tile for every non-empty tile."""
    coo = m.tocoo()
    out: dict[tuple[int, int], np.ndarray] = {}
    tr = coo.row // tile
    tc = coo.col // tile
    for r, c, tr_i, tc_i, v in zip(coo.row, coo.col, tr, tc, coo.data):
        key = (int(tr_i), int(tc_i))
        block = out.get(key)
        if block is None:
            block = np.zeros((tile, tile))
            out[key] = block
        block[r - tr_i * tile, c - tc_i * tile] = v
    return out


def tiled_spgemm(
    a: sp.spmatrix,
    b: sp.spmatrix,
    *,
    tile: int = 16,
    engine: MatrixEngineGemm | None = None,
) -> TiledSpGemmResult:
    """Multiply sparse ``a @ b`` via dense tile products on a hybrid
    matrix engine (real numerics: fp16-rounded operands, fp32
    accumulation per tile product, fp64 tile accumulation)."""
    a = sp.csr_matrix(a)
    b = sp.csr_matrix(b)
    if a.shape[1] != b.shape[0]:
        raise DeviceError(f"non-conformable: {a.shape} @ {b.shape}")
    if tile < 1:
        raise DeviceError("tile must be positive")
    eng = engine or MatrixEngineGemm(FP16, FP32)
    m_t = math.ceil(a.shape[0] / tile)
    k_t = math.ceil(a.shape[1] / tile)
    n_t = math.ceil(b.shape[1] / tile)

    # Pad logically by indexing within padded tiles.
    tiles_a = _occupied_tiles(a, tile)
    tiles_b = _occupied_tiles(b, tile)
    by_k_a: dict[int, list[int]] = {}
    for (i, k) in tiles_a:
        by_k_a.setdefault(k, []).append(i)
    by_k_b: dict[int, list[int]] = {}
    for (k, j) in tiles_b:
        by_k_b.setdefault(k, []).append(j)

    c_blocks: dict[tuple[int, int], np.ndarray] = {}
    products = 0
    for k in sorted(set(by_k_a) & set(by_k_b)):
        for i in by_k_a[k]:
            ta = tiles_a[(i, k)]
            for j in by_k_b[k]:
                tb = tiles_b[(k, j)]
                products += 1
                p = eng(ta, tb)  # one engine fragment product
                acc = c_blocks.get((i, j))
                if acc is None:
                    c_blocks[(i, j)] = p
                else:
                    acc += p
    # Assemble the sparse result.
    rows, cols, vals = [], [], []
    for (i, j), block in c_blocks.items():
        r0, c0 = i * tile, j * tile
        nz = np.nonzero(block)
        rows.extend((r0 + nz[0]).tolist())
        cols.extend((c0 + nz[1]).tolist())
        vals.extend(block[nz].tolist())
    c = sp.csr_matrix(
        (vals, (rows, cols)), shape=(a.shape[0], b.shape[1])
    )
    # Trim padding artefacts (none expected: padded area is zero).
    return TiledSpGemmResult(
        c=c,
        tile=tile,
        occupied_a=len(tiles_a),
        occupied_b=len(tiles_b),
        tile_products=products,
        dense_tile_products_possible=m_t * k_t * n_t,
    )


def spgemm_time_model(
    a: sp.spmatrix,
    b: sp.spmatrix,
    device: DeviceSpec | str = "v100",
    *,
    tile: int = 16,
) -> dict[str, float]:
    """Price the tiled-ME path against a classic CSR SpGEMM.

    Returns simulated seconds for both along with the tile statistics.
    The CSR baseline is bandwidth-priced at ~ flops + hash/merge traffic;
    the ME path is ``tile_products`` fragment GEMMs plus gather/scatter.
    """
    spec = get_device(device) if isinstance(device, str) else device
    me = spec.matrix_engine
    if me is None:
        raise DeviceError(f"{spec.name} has no matrix engine")
    a = sp.csr_matrix(a)
    b = sp.csr_matrix(b)
    result = tiled_spgemm(a, b, tile=tile)

    # Tensor-core path: fragment products + tile gather/scatter.
    sim_me = SimulatedDevice(spec)
    if result.tile_products:
        sim_me.launch(
            KernelLaunch(
                KernelKind.SPMM,
                "tile_gather",
                nbytes=2.0 * (result.occupied_a + result.occupied_b)
                * tile * tile * 2,
            )
        )
        sim_me.launch(
            KernelLaunch.gemm(
                tile, tile * result.tile_products, tile,
                fmt=me.multiply_format or "fp16",
                unit=me.name,
                name="tile_spgemm",
            )
        )
        sim_me.launch(
            KernelLaunch(
                KernelKind.SPMM,
                "tile_scatter",
                nbytes=8.0 * result.c.nnz * 2,
            )
        )

    # CSR baseline: 2 flops per intermediate product; traffic ~ hash
    # table + operand streams.
    inter = float(np.asarray(
        a.astype(bool).astype(np.int64)
        @ b.astype(bool).astype(np.int64).sum(axis=1)
    ).sum())
    sim_csr = SimulatedDevice(spec)
    sim_csr.launch(
        KernelLaunch(
            KernelKind.SPMM,
            "csr_spgemm",
            flops=2.0 * inter,
            nbytes=20.0 * inter + 12.0 * (a.nnz + b.nnz),
            fmt="fp32",
        )
    )
    return {
        "me_seconds": sim_me.elapsed,
        "csr_seconds": sim_csr.elapsed,
        "tile_products": float(result.tile_products),
        "speedup": sim_csr.elapsed / sim_me.elapsed if sim_me.elapsed else 0.0,
    }


def crossover_density(
    n: int = 512,
    device: DeviceSpec | str = "v100",
    *,
    tile: int = 16,
    densities: tuple[float, ...] = (0.001, 0.005, 0.02, 0.08, 0.3),
    seed: int = 11,
) -> list[dict[str, float]]:
    """Sweep matrix density and report ME-vs-CSR timings.

    Dense-ish matrices favour the tile engine (occupied tiles approach
    the full grid, which the engine crunches at TC rates); hyper-sparse
    ones favour CSR (most tiles are empty, and the engine would multiply
    mostly-zero fragments).
    """
    rng = np.random.default_rng(seed)
    rows = []
    for density in densities:
        a = sp.random(n, n, density=density, random_state=rng, format="csr")
        b = sp.random(n, n, density=density, random_state=rng, format="csr")
        timing = spgemm_time_model(a, b, device, tile=tile)
        timing["density"] = density
        rows.append(timing)
    return rows

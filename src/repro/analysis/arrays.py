"""Vectorized array-program kernels for the Amdahl sweep hot path.

The paper's central artifact (Fig. 4 / Sec. V) is a cost-benefit sweep
over machines x workload mixes x ME-speedup grids.  The scalar API
(:class:`repro.extrapolate.model.NodeHourModel`,
:func:`repro.analysis.costbenefit.assess_scenario`) evaluates one point
per Python call; this module evaluates the *whole* grid as a handful of
NumPy broadcast operations and the scalar layers sit on top of it as
thin views.

Bit-exactness contract
----------------------
Every tensor this module returns is **bit-identical** to the scalar
arithmetic it replaces — the golden artifacts and the serve layer's
"byte-identical to the library" claim both depend on it.  Two rules
make that possible:

* per-element operations mirror the scalar expressions exactly
  (``(1 - a) + a / s`` with the ``inf`` branch selected by mask, never
  algebraically rearranged);
* the reduction over the domain axis accumulates **left to right**,
  one domain at a time, exactly like the scalar ``sum()`` — NumPy's
  pairwise ``np.sum`` would round differently for mixes of more than
  eight domains.

The domain axis is small (the paper's machines have 6–10 domains), so
looping over it costs nothing; the big machine x speedup plane is what
vectorizes.

Padding and masking
-------------------
Machines with different domain counts stack into one ``(M, D)`` plane
zero-padded on the right; a boolean ``mask`` marks the real entries.
Padded slots have ``share == 0`` so they contribute exactly ``+0.0`` to
the left-to-right accumulation — the sum over a padded row is
bit-identical to the unpadded scalar sum.  Validation only looks at
masked (real) entries and reports the offending grid index in every
:class:`~repro.errors.ScenarioError`.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Iterable, Sequence

import numpy as np

from repro.errors import ScenarioError
from repro.resilience import cancel_point

__all__ = [
    "SweepGrid",
    "SweepResult",
    "amdahl_grid",
    "consumed_fraction_grid",
    "kernel_invocations",
]

#: Share sums may drift from 1 by this much (matches the scalar
#: ``NodeHourModel`` validation's ``abs_tol``).
SHARE_SUM_TOLERANCE = 1e-6

_kernel_invocations = itertools.count()
_kernel_invocations_seen = 0


def kernel_invocations() -> int:
    """How many grid evaluations this process has run.

    Observability hook for tests and benchmarks: a caller that claims to
    route through the vectorized path can assert this counter moved.
    """
    return _kernel_invocations_seen


def _count_invocation() -> None:
    global _kernel_invocations_seen
    _kernel_invocations_seen = next(_kernel_invocations) + 1


def _as_grid_array(values: Any, name: str) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr[None, :]
    if arr.ndim != 2:
        raise ScenarioError(
            f"{name} must be a (machines, domains) plane, got shape "
            f"{arr.shape}"
        )
    return arr


def _validate_speedups(speedups: np.ndarray) -> None:
    # ``~(s >= 1)`` catches NaN as well as undershoot.
    bad = ~(speedups >= 1.0)
    if bad.any():
        i = int(np.argmax(bad))
        raise ScenarioError(
            f"speedup must be >= 1, got {speedups[i]} "
            f"(speedup grid index {i})"
        )


def _validate_fraction_plane(
    values: np.ndarray, mask: np.ndarray, what: str, machines: Sequence[str]
) -> None:
    bad = mask & ~((values >= 0.0) & (values <= 1.0))
    if bad.any():
        m, d = np.unravel_index(int(np.argmax(bad)), bad.shape)
        label = machines[m] if m < len(machines) else f"machine {m}"
        raise ScenarioError(
            f"{label}: {what} out of range: {values[m, d]} "
            f"(grid index ({m}, {d}))"
        )


def _validate_share_sums(
    shares: np.ndarray, mask: np.ndarray, machines: Sequence[str]
) -> None:
    totals = np.where(mask, shares, 0.0).sum(axis=1)
    bad = np.abs(totals - 1.0) > SHARE_SUM_TOLERANCE
    if bad.any():
        m = int(np.argmax(bad))
        label = machines[m] if m < len(machines) else f"machine {m}"
        raise ScenarioError(
            f"{label}: domain shares sum to {totals[m]}, not 1 "
            f"(machine grid index {m})"
        )


def amdahl_grid(accelerable: Any, speedups: Any) -> np.ndarray:
    """Remaining-time-fraction plane: broadcast Amdahl over a grid.

    ``accelerable`` and ``speedups`` broadcast against each other; the
    result holds ``(1 - a) + a / s`` with the paper's ``inf``-speedup
    limit ``1 - a`` selected exactly (never computed as ``a / inf``
    plus a rearranged sum).  Bit-identical per element to
    :func:`repro.extrapolate.model.amdahl_time_fraction`.
    """
    a = np.asarray(accelerable, dtype=np.float64)
    s = np.asarray(speedups, dtype=np.float64)
    a_flat = np.atleast_1d(a)
    bad_a = ~((a_flat >= 0.0) & (a_flat <= 1.0))
    if bad_a.any():
        idx = np.unravel_index(int(np.argmax(bad_a)), bad_a.shape)
        raise ScenarioError(
            f"accelerable fraction out of range: {a_flat[idx]} "
            f"(grid index {idx})"
        )
    _validate_speedups(np.atleast_1d(s))
    with np.errstate(invalid="ignore"):
        return np.where(np.isinf(s), 1.0 - a, (1.0 - a) + a / s)


def consumed_fraction_grid(
    shares: Any,
    accelerable: Any,
    speedups: Any,
    *,
    mask: np.ndarray | None = None,
    machines: Sequence[str] = (),
    validate: bool = True,
) -> np.ndarray:
    """Consumed node-hour fraction tensor: ``(M, D) x (S,) -> (M, S)``.

    The core sweep kernel.  ``shares``/``accelerable`` are the stacked
    domain mixes (zero-padded; ``mask`` marks real entries), ``speedups``
    the ME-speedup grid (``inf`` allowed).  Element ``[m, i]`` is
    bit-identical to
    ``NodeHourModel.consumed_fraction``'s scalar loop for machine ``m``
    at speedup ``i``.
    """
    sh = _as_grid_array(shares, "shares")
    acc = _as_grid_array(accelerable, "accelerable")
    sp = np.atleast_1d(np.asarray(speedups, dtype=np.float64))
    if sh.shape != acc.shape:
        raise ScenarioError(
            f"shares {sh.shape} and accelerable {acc.shape} planes disagree"
        )
    if mask is None:
        mask = np.ones(sh.shape, dtype=bool)
    if validate:
        _validate_fraction_plane(sh, mask, "share", machines)
        _validate_fraction_plane(acc, mask, "accelerable fraction", machines)
        _validate_share_sums(sh, mask, machines)
        _validate_speedups(sp)
    _count_invocation()
    n_machines, n_domains = sh.shape
    sp_row = sp[None, :]
    inf_row = np.isinf(sp_row)
    consumed = np.zeros((n_machines, sp.shape[0]))
    for d in range(n_domains):
        # Kernel-row cancellation granularity: an abandoned sweep stops
        # within one domain's worth of arithmetic instead of finishing
        # the whole grid for nobody.
        cancel_point()
        a = acc[:, d, None]
        remaining = np.where(inf_row, 1.0 - a, (1.0 - a) + a / sp_row)
        # Left-to-right accumulation: exactly the scalar ``sum()``.
        consumed = consumed + sh[:, d, None] * remaining
    return consumed


@dataclass(frozen=True)
class SweepResult:
    """Every Fig. 4 tensor of one grid evaluation, in one shot.

    All four payload tensors are ``(machines, speedups)`` planes whose
    elements are bit-identical to the corresponding scalar
    :class:`~repro.extrapolate.model.NodeHourModel` methods.
    """

    machines: tuple[str, ...]
    speedups: np.ndarray  # (S,)
    consumed_fraction: np.ndarray  # (M, S)
    reduction: np.ndarray  # (M, S)
    throughput_improvement: np.ndarray  # (M, S)
    node_hours_saved: np.ndarray  # (M, S)

    def machine_index(self, name: str) -> int:
        try:
            return self.machines.index(name)
        except ValueError:
            raise ScenarioError(
                f"unknown machine {name!r}; grid has {list(self.machines)}"
            ) from None


@dataclass(frozen=True, eq=False)
class SweepGrid:
    """A stacked Amdahl sweep: machine mixes x an ME-speedup grid.

    ``shares``/``accelerable`` are ``(M, D)`` planes zero-padded on the
    right (``mask`` marks real domains), ``total_node_hours`` is ``(M,)``
    and ``speedups`` is the shared ``(S,)`` speedup grid — ``inf`` is a
    regular grid point handled by masking inside the kernels.

    Build one with :meth:`from_models` (stacking
    :class:`~repro.extrapolate.model.NodeHourModel` mixes) or
    :meth:`from_arrays` (raw planes, fully validated with grid-indexed
    errors); evaluate with :meth:`evaluate` for all four tensors in one
    shot, or with the per-tensor views.
    """

    machines: tuple[str, ...]
    shares: np.ndarray
    accelerable: np.ndarray
    mask: np.ndarray
    total_node_hours: np.ndarray
    speedups: np.ndarray
    domains: tuple[tuple[str, ...], ...] = field(default=())

    @classmethod
    def from_arrays(
        cls,
        machines: Sequence[str],
        shares: Any,
        accelerable: Any,
        speedups: Any,
        *,
        mask: Any | None = None,
        total_node_hours: Any | None = None,
        domains: Sequence[Sequence[str]] = (),
    ) -> "SweepGrid":
        """Validated grid from raw planes (zero-padded + masked)."""
        sh = _as_grid_array(shares, "shares")
        acc = _as_grid_array(accelerable, "accelerable")
        if sh.shape != acc.shape:
            raise ScenarioError(
                f"shares {sh.shape} and accelerable {acc.shape} planes "
                "disagree"
            )
        names = tuple(machines)
        if len(names) != sh.shape[0]:
            raise ScenarioError(
                f"{len(names)} machine names for {sh.shape[0]} mix rows"
            )
        if mask is None:
            mask_arr = np.ones(sh.shape, dtype=bool)
        else:
            mask_arr = np.asarray(mask, dtype=bool)
            if mask_arr.shape != sh.shape:
                raise ScenarioError(
                    f"mask {mask_arr.shape} does not match mixes {sh.shape}"
                )
        # Padded slots must stay arithmetically inert (+0.0 terms).
        sh = np.where(mask_arr, sh, 0.0)
        acc = np.where(mask_arr, acc, 0.0)
        if total_node_hours is None:
            hours = np.ones(len(names))
        else:
            hours = np.atleast_1d(
                np.asarray(total_node_hours, dtype=np.float64)
            )
            if hours.shape != (len(names),):
                raise ScenarioError(
                    f"total_node_hours {hours.shape} does not match "
                    f"{len(names)} machines"
                )
        sp = np.atleast_1d(np.asarray(speedups, dtype=np.float64))
        _validate_fraction_plane(sh, mask_arr, "share", names)
        _validate_fraction_plane(
            acc, mask_arr, "accelerable fraction", names
        )
        _validate_share_sums(sh, mask_arr, names)
        _validate_speedups(sp)
        return cls(
            machines=names,
            shares=sh,
            accelerable=acc,
            mask=mask_arr,
            total_node_hours=hours,
            speedups=sp,
            domains=tuple(tuple(d) for d in domains),
        )

    @classmethod
    def from_models(
        cls, models: Iterable[Any], speedups: Any
    ) -> "SweepGrid":
        """Stack :class:`NodeHourModel` mixes into one padded grid.

        Models validated their own mixes at construction; only the
        speedup grid is re-checked here.
        """
        models = list(models)
        if not models:
            raise ScenarioError("cannot build a sweep grid from no machines")
        width = max(len(m.domains) for m in models)
        n = len(models)
        sh = np.zeros((n, width))
        acc = np.zeros((n, width))
        mask = np.zeros((n, width), dtype=bool)
        hours = np.ones(n)
        for i, model in enumerate(models):
            k = len(model.domains)
            sh[i, :k] = [d.share for d in model.domains]
            acc[i, :k] = [d.accelerable for d in model.domains]
            mask[i, :k] = True
            hours[i] = model.total_node_hours
        sp = np.atleast_1d(np.asarray(speedups, dtype=np.float64))
        _validate_speedups(sp)
        return cls(
            machines=tuple(m.name for m in models),
            shares=sh,
            accelerable=acc,
            mask=mask,
            total_node_hours=hours,
            speedups=sp,
            domains=tuple(
                tuple(d.domain for d in m.domains) for m in models
            ),
        )

    # -- kernels ------------------------------------------------------------

    @cached_property
    def _result(self) -> SweepResult:
        consumed = consumed_fraction_grid(
            self.shares,
            self.accelerable,
            self.speedups,
            mask=self.mask,
            machines=self.machines,
            validate=False,  # validated at construction
        )
        reduction = 1.0 - consumed
        # A fully-accelerable mix at infinite speedup consumes nothing;
        # its throughput factor is the mathematical limit, +inf.
        with np.errstate(divide="ignore"):
            throughput = 1.0 / consumed
        saved = self.total_node_hours[:, None] * reduction
        result = SweepResult(
            machines=self.machines,
            speedups=self.speedups,
            consumed_fraction=consumed,
            reduction=reduction,
            throughput_improvement=throughput,
            node_hours_saved=saved,
        )
        # ABFT-style self-checks after every kernel pass: a corrupted
        # tensor raises IntegrityError instead of flowing downstream.
        from repro.integrity.invariants import verify_sweep_result

        verify_sweep_result(self, result)
        return result

    def evaluate(self) -> SweepResult:
        """All four Fig. 4 tensors from one broadcast evaluation."""
        return self._result

    def consumed_fraction(self) -> np.ndarray:
        return self._result.consumed_fraction

    def reduction(self) -> np.ndarray:
        return self._result.reduction

    def throughput_improvement(self) -> np.ndarray:
        return self._result.throughput_improvement

    def node_hours_saved(self) -> np.ndarray:
        return self._result.node_hours_saved

    @property
    def shape(self) -> tuple[int, int]:
        """(machines, speedups) — the evaluated plane's shape."""
        return (len(self.machines), int(self.speedups.shape[0]))

    def with_speedups(self, speedups: Any) -> "SweepGrid":
        """The same stacked mixes over a different speedup grid."""
        sp = np.atleast_1d(np.asarray(speedups, dtype=np.float64))
        _validate_speedups(sp)
        return SweepGrid(
            machines=self.machines,
            shares=self.shares,
            accelerable=self.accelerable,
            mask=self.mask,
            total_node_hours=self.total_node_hours,
            speedups=sp,
            domains=self.domains,
        )


def _ensure_inf_column(speedups: Sequence[float]) -> tuple[np.ndarray, int]:
    """The speedup grid with an ``inf`` column guaranteed, plus its index
    (the ideal-engine column backing ``node_hour_reduction_ideal``)."""
    sp = list(float(s) for s in speedups)
    for i, s in enumerate(sp):
        if math.isinf(s):
            return np.asarray(sp, dtype=np.float64), i
    sp.append(math.inf)
    return np.asarray(sp, dtype=np.float64), len(sp) - 1

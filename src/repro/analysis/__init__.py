"""The paper's core contribution: the ME cost-benefit methodology.

:mod:`repro.analysis.costbenefit` composes the measured workload
profiles, the device models and the extrapolation scenarios into the
per-machine assessment the paper's conclusion draws ("an overall science
throughput improvement of ~1.1x ... might justify the investment if all
other architectural options have been exhausted").
:mod:`repro.analysis.silicon` formalises the Sec. V-A1 dark-silicon
argument: reclaiming the Tensor Cores' area buys almost nothing because
the FPUs already saturate the TDP.
"""

from repro.analysis.arrays import (
    SweepGrid,
    SweepResult,
    amdahl_grid,
    consumed_fraction_grid,
)
from repro.analysis.costbenefit import (
    CostBenefitReport,
    assess_grid,
    assess_machine,
    assess_scenario,
    me_speedup_estimate,
)
from repro.analysis.silicon import (
    CoExecutionReport,
    DarkSiliconReport,
    co_execution_analysis,
    dark_silicon_analysis,
)
from repro.analysis.sparse import (
    TiledSpGemmResult,
    crossover_density,
    spgemm_time_model,
    tiled_spgemm,
)
from repro.analysis.scaling import ScalingPoint, hpl_strong_scaling

__all__ = [
    "ScalingPoint",
    "hpl_strong_scaling",
    "SweepGrid",
    "SweepResult",
    "amdahl_grid",
    "consumed_fraction_grid",
    "CostBenefitReport",
    "assess_scenario",
    "assess_machine",
    "assess_grid",
    "me_speedup_estimate",
    "DarkSiliconReport",
    "dark_silicon_analysis",
    "CoExecutionReport",
    "co_execution_analysis",
    "TiledSpGemmResult",
    "tiled_spgemm",
    "spgemm_time_model",
    "crossover_density",
]

"""Strong-scaling study: what happens to the ME's value at scale.

The paper measures single-node GEMM fractions; production machines run
distributed.  As node counts grow under strong scaling, each rank's
O(n^3/P) GEMM work shrinks faster than its O(n^2/sqrt(P)) panel and
broadcast costs, so the *accelerable* share of the runtime — and with
it the Amdahl value of a matrix engine — erodes.  This module runs the
block-cyclic LU (our HPL skeleton, :func:`repro.blas.scalapack.pdgetrf`)
across process grids and reports per-scale GEMM fractions, parallel
efficiencies, and the resulting ME node-hour savings.

Device lookups go through :func:`repro.hardware.registry.get_device`,
which resolves against the active scenario overlay — so the sweep can
price a hypothetical device a :class:`~repro.scenario.ScenarioSpec`
defines, not just the Table I catalogue.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


from repro.blas import ProcessGrid, pdgetrf
from repro.blas.stub import zero_stub
from repro.errors import ScenarioError
from repro.extrapolate.model import amdahl_time_fraction
from repro.hardware.specs import DeviceSpec
from repro.hardware.registry import get_device
from repro.profiling import Profiler, RegionClass
from repro.sim import SimulatedDevice, execution_context

__all__ = ["ScalingPoint", "hpl_strong_scaling"]


@dataclass(frozen=True)
class ScalingPoint:
    """One node count of the strong-scaling sweep."""

    nodes: int
    rank_time_s: float
    gemm_fraction: float
    accelerable_fraction: float  # GEMM (+trsm) directly mappable work
    speedup_vs_one: float
    parallel_efficiency: float

    def me_reduction(self, me_speedup: float = 4.0) -> float:
        """Runtime saving an ME of ``me_speedup`` buys at this scale."""
        return 1.0 - amdahl_time_fraction(self.accelerable_fraction, me_speedup)


def hpl_strong_scaling(
    n: int = 16384,
    node_counts: tuple[int, ...] = (1, 4, 16, 64),
    device: DeviceSpec | str = "system1",
    *,
    block: int = 128,
    network_bps: float = 12.5e9,
) -> list[ScalingPoint]:
    """Run the distributed LU at fixed global ``n`` over square process
    grids and report how the GEMM share (and the ME's value) scale.

    ``node_counts`` must be perfect squares (square BLACS grids).
    """
    spec = get_device(device) if isinstance(device, str) else device
    points: list[ScalingPoint] = []
    base_time: float | None = None
    for p in node_counts:
        root = math.isqrt(p)
        if root * root != p:
            raise ScenarioError(
                f"node count {p} is not a perfect square (square grids only)"
            )
        prof = Profiler()
        sim = SimulatedDevice(spec, comm_bps=network_bps)
        with execution_context(sim, profiler=prof, compute_numerics=False):
            pdgetrf(zero_stub(n), ProcessGrid(root, root, block=block))
        rank_time = sim.elapsed
        fractions = prof.fractions()
        gemm = fractions[RegionClass.GEMM]
        accelerable = gemm + fractions[RegionClass.BLAS]
        if base_time is None:
            base_time = rank_time
        speedup = base_time / rank_time if rank_time > 0 else 0.0
        points.append(
            ScalingPoint(
                nodes=p,
                rank_time_s=rank_time,
                gemm_fraction=gemm,
                accelerable_fraction=accelerable,
                speedup_vs_one=speedup,
                parallel_efficiency=speedup / (p / node_counts[0]),
            )
        )
    return points

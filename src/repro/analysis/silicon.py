"""The dark-silicon argument (Sec. V-A1).

Fig. 1 shows SGEMM and DGEMM drawing close to the V100's 300 W TDP on
the FPUs alone, and that FPUs and TCs cannot run concurrently.  The
consequence: reclaiming the matrix engine's die area for more FPUs buys
almost nothing, because sustained FPU throughput is *power*-limited,
not area-limited — the extra units would simply force a clock reduction
back to the same envelope.  This module quantifies that statement for
any modelled device.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DeviceError
from repro.hardware.registry import get_device
from repro.hardware.specs import DeviceSpec

__all__ = [
    "DarkSiliconReport",
    "dark_silicon_analysis",
    "CoExecutionReport",
    "co_execution_analysis",
]


@dataclass(frozen=True)
class DarkSiliconReport:
    """What reallocating the ME's area to vector units would buy."""

    device: str
    fmt: str
    me_area_fraction: float
    fpu_full_load_w: float
    tdp_w: float
    area_gain: float  # nominal peak increase from reclaimed area
    power_limited_gain: float  # achievable sustained increase under TDP

    @property
    def headroom(self) -> float:
        """TDP headroom factor above the FPUs' full-load draw."""
        return self.tdp_w / self.fpu_full_load_w

    @property
    def effectively_free(self) -> bool:
        """The paper's claim: the ME area is 'non-valuable' for FPU
        throughput — reclaiming it gains < 5 % sustained performance."""
        return self.power_limited_gain < 1.05

    def summary(self) -> str:
        return (
            f"{self.device}: reclaiming {self.me_area_fraction * 100:.0f}% "
            f"ME area raises nominal {self.fmt} peak {self.area_gain:.2f}x "
            f"but TDP caps the sustained gain at "
            f"{self.power_limited_gain:.3f}x."
        )


@dataclass(frozen=True)
class CoExecutionReport:
    """What running two units *concurrently* under one TDP would yield.

    Models the paper's Sec. II-C observation: "SGEMM or DGEMM cannot
    run concurrently with HGEMM" — because each alone already draws
    near-TDP, co-scheduling would throttle both to the shared power
    envelope."""

    device: str
    unit_a: str
    fmt_a: str
    unit_b: str
    fmt_b: str
    solo_power_a_w: float
    solo_power_b_w: float
    combined_demand_w: float
    throttle_factor: float  # rate multiplier both units suffer together

    @property
    def concurrent_worthwhile(self) -> bool:
        """Is co-execution better than time-slicing the two kernels?

        Time-slicing achieves an average of 50 % of each unit's solo
        rate; co-execution achieves ``throttle_factor`` of each.  With
        both units near TDP the factor drops toward ~0.5 and the gain
        evaporates — the dark-silicon observation.  We require a >=20 %
        advantage over slicing before calling it worthwhile."""
        return self.throttle_factor >= 0.60

    def summary(self) -> str:
        return (
            f"{self.device}: {self.unit_a}/{self.fmt_a} + "
            f"{self.unit_b}/{self.fmt_b} demand {self.combined_demand_w:.0f} W "
            f"together; the TDP throttles both to "
            f"{self.throttle_factor * 100:.0f}% of their solo rates "
            f"({'worthwhile' if self.concurrent_worthwhile else 'no better than time-slicing'})."
        )


def co_execution_analysis(
    device: DeviceSpec | str,
    *,
    unit_a: str,
    fmt_a: str,
    unit_b: str,
    fmt_b: str,
) -> CoExecutionReport:
    """Model two units sharing the package TDP.

    Dynamic power scales ~linearly with issue rate at fixed V/f, so when
    the combined full-rate demand exceeds the TDP both units throttle by
    the same headroom factor ``(TDP - idle) / (demand - idle)``.
    """
    spec = get_device(device) if isinstance(device, str) else device
    ua, ub = spec.unit(unit_a), spec.unit(unit_b)
    pa = ua.power(fmt_a) or spec.tdp_w
    pb = ub.power(fmt_b) or spec.tdp_w
    # Each solo power already includes the idle floor; the combined
    # demand pays it once.
    demand = pa + pb - spec.idle_w
    if demand <= spec.tdp_w:
        throttle = 1.0
    else:
        throttle = (spec.tdp_w - spec.idle_w) / (demand - spec.idle_w)
    return CoExecutionReport(
        device=spec.name,
        unit_a=unit_a,
        fmt_a=fmt_a,
        unit_b=unit_b,
        fmt_b=fmt_b,
        solo_power_a_w=pa,
        solo_power_b_w=pb,
        combined_demand_w=demand,
        throttle_factor=throttle,
    )


def dark_silicon_analysis(
    device: DeviceSpec | str,
    *,
    fmt: str = "fp64",
    me_area_fraction: float = 0.10,
) -> DarkSiliconReport:
    """Evaluate the FPU-for-ME area swap on one device.

    ``me_area_fraction`` defaults to the ~10 % of SM area NVIDIA's
    Tensor Cores are estimated to occupy.
    """
    spec = get_device(device) if isinstance(device, str) else device
    if not 0.0 < me_area_fraction < 1.0:
        raise DeviceError("me_area_fraction must be in (0, 1)")
    unit = spec.best_unit(fmt, allow_matrix=False)
    full_load = unit.power(fmt)
    if full_load <= 0.0:
        full_load = spec.tdp_w
    # Nominal peak scales with the reclaimed compute area; sustained
    # throughput scales with available power (dynamic power ~ units x
    # clock; holding voltage, throughput per watt is ~constant).
    area_gain = 1.0 + me_area_fraction
    power_gain = spec.tdp_w / full_load
    return DarkSiliconReport(
        device=spec.name,
        fmt=fmt,
        me_area_fraction=me_area_fraction,
        fpu_full_load_w=full_load,
        tdp_w=spec.tdp_w,
        area_gain=area_gain,
        power_limited_gain=min(area_gain, power_gain),
    )

"""Machine-level cost-benefit assessment of adding a matrix engine.

The scalar entry points (:func:`assess_scenario`, :func:`assess_machine`)
assess one (machine, speedup) pair; :func:`assess_grid` assesses a whole
machines x ME-speedups plane through the vectorized kernel layer
(:mod:`repro.analysis.arrays`) in one broadcast evaluation, returning
the same :class:`CostBenefitReport` objects bit-identically — the
scalar API is a one-cell view of the grid one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import DeviceError
from repro.extrapolate.model import NodeHourModel
from repro.hardware.registry import get_device
from repro.hardware.specs import DeviceSpec

__all__ = [
    "me_speedup_estimate",
    "me_speedup_grid",
    "CostBenefitReport",
    "assess_scenario",
    "assess_machine",
    "assess_grid",
]


def me_speedup_estimate(
    device: DeviceSpec | str, fmt: str = "fp64"
) -> float:
    """How much faster the device's matrix engine runs GEMM in ``fmt``
    than its vector units — the realistic value of Fig. 4's speedup
    parameter (~4x is what the paper assumes for near-term MEs)."""
    spec = get_device(device) if isinstance(device, str) else device
    me = spec.matrix_engine
    if me is None or not me.supports(fmt):
        raise DeviceError(
            f"{spec.name} has no matrix engine supporting {fmt!r}"
        )
    vector = spec.peak(fmt, allow_matrix=False)
    return me.peak(fmt) / vector


def me_speedup_grid(
    device: DeviceSpec | str, fmts: Sequence[str]
) -> list[float]:
    """:func:`me_speedup_estimate` for a whole format axis at once.

    The ME/vector peak ratios evaluate as one elementwise array quotient;
    each entry equals the scalar estimate exactly (same two peaks, same
    single division).  Any format the engine cannot run raises the scalar
    path's :class:`~repro.errors.DeviceError` before anything computes.
    """
    spec = get_device(device) if isinstance(device, str) else device
    me = spec.matrix_engine
    for fmt in fmts:
        if me is None or not me.supports(fmt):
            raise DeviceError(
                f"{spec.name} has no matrix engine supporting {fmt!r}"
            )
    me_peaks = np.array([me.peak(f) for f in fmts], dtype=np.float64)
    vector_peaks = np.array(
        [spec.peak(f, allow_matrix=False) for f in fmts], dtype=np.float64
    )
    return [float(r) for r in me_peaks / vector_peaks]


@dataclass(frozen=True)
class CostBenefitReport:
    """The assessment of one machine/scenario pair."""

    machine: str
    me_speedup: float
    node_hour_reduction: float
    node_hour_reduction_ideal: float  # infinitely fast ME
    throughput_improvement: float
    node_hours_saved: float

    @property
    def worthwhile(self) -> bool:
        """The paper's bar: a ~10 % throughput gain is the point at which
        an ME 'might justify the investment if all other architectural
        options have been exhausted'."""
        return self.throughput_improvement >= 1.10

    def verdict(self) -> str:
        """One-sentence assessment in the paper's voice."""
        pct = self.node_hour_reduction * 100.0
        if self.worthwhile:
            return (
                f"{self.machine}: a {self.me_speedup:.1f}x ME reduces "
                f"node-hours by {pct:.1f}% — may justify the silicon if "
                "all other architectural options are exhausted."
            )
        return (
            f"{self.machine}: a {self.me_speedup:.1f}x ME reduces "
            f"node-hours by only {pct:.1f}% — the silicon is better "
            "invested elsewhere."
        )


def assess_scenario(
    scenario: NodeHourModel,
    *,
    me_speedup: float = 4.0,
) -> CostBenefitReport:
    """Run the paper's cost-benefit arithmetic on one machine.

    A one-cell view of :func:`assess_grid` — the report's floats come
    from the same vectorized kernels, bit-identically.
    """
    return assess_grid((scenario,), me_speedups=(me_speedup,))[0][0]


def assess_grid(
    scenarios: Sequence[NodeHourModel | str],
    *,
    me_speedups: Sequence[float] = (4.0,),
) -> list[list[CostBenefitReport]]:
    """Assess a whole machines x ME-speedups plane in one evaluation.

    ``scenarios`` may mix built :class:`NodeHourModel` mixes and wire
    names (resolved through :func:`repro.extrapolate.build_machine`
    under the active scenario overlay).  Returns one row of
    :class:`CostBenefitReport` views per machine, one column per entry
    of ``me_speedups`` — ``result[m][s]`` is bit-identical to
    ``assess_scenario(scenarios[m], me_speedup=me_speedups[s])``.

    The ideal (infinitely fast) engine column every report carries is
    folded into the same grid evaluation, so the full Fig. 4-style
    sweep is a handful of broadcast operations regardless of plane
    size.
    """
    from repro.analysis.arrays import SweepGrid, _ensure_inf_column

    models = []
    for scenario in scenarios:
        if isinstance(scenario, str):
            from repro.extrapolate import build_machine

            scenario = build_machine(scenario)
        models.append(scenario)
    speedups, inf_col = _ensure_inf_column(me_speedups)
    result = SweepGrid.from_models(models, speedups).evaluate()
    reports = []
    for m, model in enumerate(models):
        row = []
        for s, me_speedup in enumerate(me_speedups):
            row.append(
                CostBenefitReport(
                    machine=model.name,
                    me_speedup=float(me_speedup),
                    node_hour_reduction=float(result.reduction[m, s]),
                    node_hour_reduction_ideal=float(
                        result.reduction[m, inf_col]
                    ),
                    throughput_improvement=float(
                        result.throughput_improvement[m, s]
                    ),
                    node_hours_saved=float(result.node_hours_saved[m, s]),
                )
            )
        reports.append(row)
    return reports


def assess_machine(name: str, *, me_speedup: float = 4.0) -> CostBenefitReport:
    """Assess one machine by wire name under the active scenario.

    Resolves through :func:`repro.extrapolate.build_machine`, so the
    name may be a built-in Fig. 4 machine (possibly overlay-edited) or
    a machine the active :class:`~repro.scenario.ScenarioSpec` defines.
    """
    from repro.extrapolate import build_machine

    return assess_scenario(build_machine(name), me_speedup=me_speedup)

"""Machine-level cost-benefit assessment of adding a matrix engine."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import DeviceError
from repro.extrapolate.model import NodeHourModel
from repro.hardware.registry import get_device
from repro.hardware.specs import DeviceSpec

__all__ = [
    "me_speedup_estimate",
    "CostBenefitReport",
    "assess_scenario",
    "assess_machine",
]


def me_speedup_estimate(
    device: DeviceSpec | str, fmt: str = "fp64"
) -> float:
    """How much faster the device's matrix engine runs GEMM in ``fmt``
    than its vector units — the realistic value of Fig. 4's speedup
    parameter (~4x is what the paper assumes for near-term MEs)."""
    spec = get_device(device) if isinstance(device, str) else device
    me = spec.matrix_engine
    if me is None or not me.supports(fmt):
        raise DeviceError(
            f"{spec.name} has no matrix engine supporting {fmt!r}"
        )
    vector = spec.peak(fmt, allow_matrix=False)
    return me.peak(fmt) / vector


@dataclass(frozen=True)
class CostBenefitReport:
    """The assessment of one machine/scenario pair."""

    machine: str
    me_speedup: float
    node_hour_reduction: float
    node_hour_reduction_ideal: float  # infinitely fast ME
    throughput_improvement: float
    node_hours_saved: float

    @property
    def worthwhile(self) -> bool:
        """The paper's bar: a ~10 % throughput gain is the point at which
        an ME 'might justify the investment if all other architectural
        options have been exhausted'."""
        return self.throughput_improvement >= 1.10

    def verdict(self) -> str:
        """One-sentence assessment in the paper's voice."""
        pct = self.node_hour_reduction * 100.0
        if self.worthwhile:
            return (
                f"{self.machine}: a {self.me_speedup:.1f}x ME reduces "
                f"node-hours by {pct:.1f}% — may justify the silicon if "
                "all other architectural options are exhausted."
            )
        return (
            f"{self.machine}: a {self.me_speedup:.1f}x ME reduces "
            f"node-hours by only {pct:.1f}% — the silicon is better "
            "invested elsewhere."
        )


def assess_scenario(
    scenario: NodeHourModel,
    *,
    me_speedup: float = 4.0,
) -> CostBenefitReport:
    """Run the paper's cost-benefit arithmetic on one machine."""
    return CostBenefitReport(
        machine=scenario.name,
        me_speedup=me_speedup,
        node_hour_reduction=scenario.reduction(me_speedup),
        node_hour_reduction_ideal=scenario.reduction(math.inf),
        throughput_improvement=scenario.throughput_improvement(me_speedup),
        node_hours_saved=scenario.node_hours_saved(me_speedup),
    )


def assess_machine(name: str, *, me_speedup: float = 4.0) -> CostBenefitReport:
    """Assess one machine by wire name under the active scenario.

    Resolves through :func:`repro.extrapolate.build_machine`, so the
    name may be a built-in Fig. 4 machine (possibly overlay-edited) or
    a machine the active :class:`~repro.scenario.ScenarioSpec` defines.
    """
    from repro.extrapolate import build_machine

    return assess_scenario(build_machine(name), me_speedup=me_speedup)

"""nvprof-style mixed-precision analysis: the Table IV columns.

For each workload we profile one FP32 iteration and one mixed-precision
iteration on the same device and report:

* **speedup** — fp32 step time / mixed step time;
* **%TC** — matrix-engine time relative to the *total* mixed step;
* **%TC comp** — matrix-engine time relative to compute time only
  (total minus host<->device transfers);
* **%Mem** — host<->device transfer share of the mixed step.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dl.models import ModelSpec, build_model
from repro.dl.training import TrainingResult, train_step
from repro.hardware.specs import DeviceSpec

__all__ = ["MixedPrecisionReport", "profile_mixed_precision"]


@dataclass(frozen=True)
class KernelRow:
    """One line of the per-kernel breakdown (nvprof's default view)."""

    name: str
    unit: str
    calls: int
    total_time_s: float
    time_pct: float
    flops: float
    on_tensor_core: bool


@dataclass(frozen=True)
class MixedPrecisionReport:
    """One Table IV row."""

    model: str
    device: str
    speedup: float
    tc_pct: float
    tc_comp_pct: float
    mem_pct: float
    fp32: TrainingResult
    mixed: TrainingResult

    def row(self) -> str:
        return (
            f"{self.model:<10s} {self.speedup:5.2f}x  "
            f"%TC {self.tc_pct:6.2f}  %TC comp {self.tc_comp_pct:6.2f}  "
            f"%Mem {self.mem_pct:6.2f}"
        )

    def kernel_table(self, top: int = 10, *, precision: str = "mixed") -> list[KernelRow]:
        """Per-kernel time breakdown of one run, nvprof-style.

        Aggregates the trace by kernel name, sorted by total time; this
        is the view the paper's authors manually inspected to verify
        "which kernels are being executed" (Sec. III-C3).
        """
        run = self.mixed if precision == "mixed" else self.fp32
        total = run.step_time_s or 1.0
        groups: dict[tuple[str, str], list] = {}
        for rec in run.trace:
            groups.setdefault((rec.launch.name, rec.unit), []).append(rec)
        rows = [
            KernelRow(
                name=name,
                unit=unit,
                calls=len(recs),
                total_time_s=sum(r.duration for r in recs),
                time_pct=100.0 * sum(r.duration for r in recs) / total,
                flops=sum(r.launch.flops for r in recs),
                on_tensor_core=unit in ("tensorcore", "mma", "amx", "systolic"),
            )
            for (name, unit), recs in groups.items()
        ]
        rows.sort(key=lambda r: r.total_time_s, reverse=True)
        return rows[:top]


def profile_mixed_precision(
    model: ModelSpec | str,
    device: DeviceSpec | str = "v100",
) -> MixedPrecisionReport:
    """Profile FP32 vs mixed precision for one workload (Table IV)."""
    spec = build_model(model) if isinstance(model, str) else model
    fp32 = train_step(spec, device, precision="fp32")
    mixed = train_step(spec, device, precision="mixed")
    total = mixed.step_time_s
    mem = mixed.memcpy_time_s
    tc = mixed.tc_time_s
    compute = max(total - mem, 1e-30)
    return MixedPrecisionReport(
        model=spec.name,
        device=mixed.device,
        speedup=fp32.step_time_s / total,
        tc_pct=100.0 * tc / total,
        tc_comp_pct=100.0 * tc / compute,
        mem_pct=100.0 * mem / total,
        fp32=fp32,
        mixed=mixed,
    )

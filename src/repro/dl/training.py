"""Execute training steps on a simulated device.

Drives Fig. 2 (ResNet50 energy efficiency across eight chips) and the
throughput side of Table IV.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dl.amp import PrecisionPolicy
from repro.dl.lowering import lower_inference_step, lower_training_step
from repro.dl.models import ModelSpec
from repro.hardware.registry import get_device
from repro.hardware.specs import DeviceSpec
from repro.sim.engine import SimulatedDevice
from repro.sim.trace import Trace

__all__ = ["TrainingResult", "train_step", "inference_step"]


@dataclass(frozen=True)
class TrainingResult:
    """One profiled training iteration."""

    model: str
    device: str
    precision: str
    batch: int
    step_time_s: float
    energy_j: float
    trace: Trace

    @property
    def samples_per_s(self) -> float:
        """Training throughput (Fig. 2's images/s annotations)."""
        return self.batch / self.step_time_s

    @property
    def avg_power_w(self) -> float:
        return self.energy_j / self.step_time_s

    @property
    def samples_per_j(self) -> float:
        """Energy efficiency (the Fig. 2 y-axis)."""
        return self.batch / self.energy_j

    @property
    def tc_time_s(self) -> float:
        """Time on the matrix engine (any unit named like a ME)."""
        return sum(
            r.duration
            for r in self.trace
            if r.unit in ("tensorcore", "mma", "amx", "systolic")
        )

    @property
    def memcpy_time_s(self) -> float:
        return self.trace.memcpy_time()


def _run_step(
    model: ModelSpec,
    device: DeviceSpec | str,
    precision: str,
    lower,
) -> TrainingResult:
    spec = get_device(device) if isinstance(device, str) else device
    policy = PrecisionPolicy(precision)
    sim = SimulatedDevice(spec)
    for kernel in lower(model, spec, policy):
        sim.launch(kernel)
    return TrainingResult(
        model=model.name,
        device=spec.name,
        precision=precision,
        batch=model.batch,
        step_time_s=sim.elapsed,
        energy_j=sim.energy,
        trace=sim.trace,
    )


def train_step(
    model: ModelSpec,
    device: DeviceSpec | str = "v100",
    *,
    precision: str = "fp32",
) -> TrainingResult:
    """Run one training iteration and return its timing/energy."""
    return _run_step(model, device, precision, lower_training_step)


def inference_step(
    model: ModelSpec,
    device: DeviceSpec | str = "v100",
    *,
    precision: str = "fp32",
) -> TrainingResult:
    """Run one forward-only (inference) iteration."""
    return _run_step(model, device, precision, lower_inference_step)

"""The 12 DL workloads of Table IV / Table V ("Deep Learning" rows).

Seven full models (BERT, Cosmoflow, VGG16, ResNet50, DeepLabV3, SSD300,
NCF) and five single-layer benchmarks (GEMM, GRU, LSTM, Conv2D,
Attention), mirroring the paper's benchmarker tool: synthetic data,
fixed batch, one GPU.

Layer shapes follow the published architectures; batch sizes and the
input-staging volumes are CALIBRATED within realistic ranges so the
simulated Table IV columns land near the measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import WorkloadError
from repro.dl.layers import (
    Activation,
    Attention,
    BatchNorm,
    Conv2D,
    Conv3D,
    Dense,
    Embedding,
    Gru,
    Layer,
    LayerNorm,
    Lstm,
    Op,
    Pool,
    Softmax,
)

__all__ = ["ModelSpec", "MODEL_BUILDERS", "build_model", "model_names"]


@dataclass(frozen=True)
class ModelSpec:
    """A benchmarkable model: layers + batch + staging volume."""

    name: str
    domain: str
    layers: tuple[Layer, ...]
    batch: int
    input_bytes_per_sample: float
    mixed_input_ratio: float = 1.0  # staging shrink when inputs go fp16
    description: str = ""
    _ops_cache: list = field(default_factory=list, compare=False, repr=False)

    def forward_ops(self) -> list[Op]:
        """Lowered forward ops (cached; layer lists are immutable)."""
        if not self._ops_cache:
            ops: list[Op] = []
            for layer in self.layers:
                ops.extend(layer.ops(self.batch))
            self._ops_cache.extend(ops)
        return list(self._ops_cache)

    @property
    def flops_per_sample(self) -> float:
        """Forward+backward flops per sample (3x forward, the usual
        training estimate)."""
        fwd = sum(op.flops for op in self.forward_ops())
        return 3.0 * fwd / self.batch


# ---------------------------------------------------------------------------
# Full models
# ---------------------------------------------------------------------------


def _conv_bn_relu(name: str, cin: int, cout: int, h: int, w: int,
                  kernel: int = 3, stride: int = 1,
                  tc_fraction: float = 0.5) -> list[Layer]:
    conv = Conv2D(name, cin, cout, h, w, kernel=kernel, stride=stride,
                  tc_fraction=tc_fraction)
    elems = conv.output_elems(1)
    return [
        conv,
        BatchNorm(f"{name}_bn", elems),
        Activation(f"{name}_relu", elems),
    ]


def _resnet50_backbone(res: int, prefix: str = "resnet",
                       tc_fraction: float = 0.75) -> list[Layer]:
    """ResNet-50's conv stack at input resolution ``res``.

    ``tc_fraction`` is the cuDNN TC-kernel coverage (CALIBRATED).
    """
    layers: list[Layer] = []
    layers += _conv_bn_relu(f"{prefix}/stem", 3, 64, res, res, kernel=7,
                            stride=2, tc_fraction=0.0)
    h = res // 4  # stem stride + maxpool
    layers.append(Pool(f"{prefix}/maxpool", 64.0 * (res // 2) ** 2))
    stage_cfg = [(64, 256, 3), (128, 512, 4), (256, 1024, 6), (512, 2048, 3)]
    cin = 64
    for s, (mid, out, blocks) in enumerate(stage_cfg):
        for b in range(blocks):
            stride = 2 if (b == 0 and s > 0) else 1
            n = f"{prefix}/s{s}b{b}"
            layers += _conv_bn_relu(f"{n}/c1", cin, mid, h, h, kernel=1,
                                    tc_fraction=tc_fraction)
            layers += _conv_bn_relu(f"{n}/c2", mid, mid, h, h, kernel=3,
                                    stride=stride, tc_fraction=tc_fraction)
            h = max(1, h // stride)
            layers += _conv_bn_relu(f"{n}/c3", cin=mid, cout=out, h=h, w=h,
                                    kernel=1, tc_fraction=tc_fraction)
            cin = out
    return layers


def build_resnet50(batch: int = 64) -> ModelSpec:
    layers = _resnet50_backbone(224)
    layers.append(Pool("resnet/avgpool", 2048.0 * 7 * 7))
    layers.append(Dense("resnet/fc", 2048, 1000))
    return ModelSpec(
        name="Resnet50",
        domain="Image Recognition",
        layers=tuple(layers),
        batch=batch,
        input_bytes_per_sample=3 * 224 * 224 * 4.0,
        description="50-layer residual CNN (He et al.)",
    )


def build_vgg16(batch: int = 64) -> ModelSpec:
    cfg = [
        (3, 64, 224), (64, 64, 224),
        (64, 128, 112), (128, 128, 112),
        (128, 256, 56), (256, 256, 56), (256, 256, 56),
        (256, 512, 28), (512, 512, 28), (512, 512, 28),
        (512, 512, 14), (512, 512, 14), (512, 512, 14),
    ]
    layers: list[Layer] = []
    for i, (cin, cout, res) in enumerate(cfg):
        conv = Conv2D(f"vgg/conv{i}", cin, cout, res, res, tc_fraction=0.40)
        layers.append(conv)
        layers.append(Activation(f"vgg/relu{i}", conv.output_elems(1)))
    layers += [
        Dense("vgg/fc6", 512 * 7 * 7, 4096),
        Activation("vgg/relu_fc6", 4096),
        Dense("vgg/fc7", 4096, 4096),
        Activation("vgg/relu_fc7", 4096),
        Dense("vgg/fc8", 4096, 1000),
    ]
    return ModelSpec(
        name="VGG16",
        domain="Image Recognition",
        layers=tuple(layers),
        batch=batch,
        input_bytes_per_sample=3 * 224 * 224 * 4.0,
        description="16-layer plain CNN (Simonyan & Zisserman)",
    )


def build_deeplabv3(batch: int = 16) -> ModelSpec:
    # ResNet-50 backbone at 513x513 with an ASPP head.
    layers = _resnet50_backbone(513, prefix="deeplab", tc_fraction=0.55)
    for i, dilation in enumerate((1, 12, 24, 36)):
        layers += _conv_bn_relu(f"deeplab/aspp{i}", 2048, 256, 33, 33,
                                tc_fraction=0.55)
    layers += _conv_bn_relu("deeplab/project", 1024 + 256, 256, 33, 33,
                            kernel=1, tc_fraction=0.55)
    layers.append(Conv2D("deeplab/classifier", 256, 21, 33, 33, kernel=1,
                         tc_fraction=0.0))
    return ModelSpec(
        name="DeepLabV3",
        domain="Image Segmentation",
        layers=tuple(layers),
        batch=batch,
        input_bytes_per_sample=3 * 513 * 513 * 4.0,
        description="Atrous-convolution semantic segmentation",
    )


def build_ssd300(batch: int = 32) -> ModelSpec:
    cfg = [
        (3, 64, 300), (64, 64, 300),
        (64, 128, 150), (128, 128, 150),
        (128, 256, 75), (256, 256, 75), (256, 256, 75),
        (256, 512, 38), (512, 512, 38), (512, 512, 38),
        (512, 512, 19), (512, 512, 19), (512, 512, 19),
    ]
    layers: list[Layer] = []
    for i, (cin, cout, res) in enumerate(cfg):
        conv = Conv2D(f"ssd/conv{i}", cin, cout, res, res, tc_fraction=0.28)
        layers.append(conv)
        layers.append(Activation(f"ssd/relu{i}", conv.output_elems(1)))
    extras = [(512, 1024, 19), (1024, 256, 10), (256, 512, 10),
              (512, 128, 5), (128, 256, 5), (256, 128, 3)]
    for i, (cin, cout, res) in enumerate(extras):
        conv = Conv2D(f"ssd/extra{i}", cin, cout, res, res, tc_fraction=0.28)
        layers.append(conv)
        layers.append(Activation(f"ssd/extra_relu{i}", conv.output_elems(1)))
    # Detection heads: class + box convs over 8732 priors.
    layers.append(Conv2D("ssd/loc_head", 512, 24, 38, 38, tc_fraction=0.0))
    layers.append(Conv2D("ssd/conf_head", 512, 324, 38, 38, tc_fraction=0.0))
    layers.append(Softmax("ssd/nms_softmax", 8732.0 * 81))
    return ModelSpec(
        name="SSD300",
        domain="Object Detection",
        layers=tuple(layers),
        batch=batch,
        input_bytes_per_sample=3 * 300 * 300 * 4.0,
        description="Single-shot multibox detector on VGG16",
    )


def build_cosmoflow(batch: int = 8) -> ModelSpec:
    layers: list[Layer] = []
    cin, res = 4, 128
    for i, cout in enumerate((16, 32, 64, 128, 256)):
        conv = Conv3D(f"cosmo/conv{i}", cin, cout, res, res, res, stride=1)
        layers.append(conv)
        layers.append(Activation(f"cosmo/lrelu{i}", conv.output_elems(1)))
        layers.append(Pool(f"cosmo/pool{i}", conv.output_elems(1)))
        cin, res = cout, res // 2
    flat = cin * res**3
    layers += [
        Dense("cosmo/fc1", int(flat), 128),
        Dense("cosmo/fc2", 128, 64),
        Dense("cosmo/fc3", 64, 4),
    ]
    return ModelSpec(
        name="Cosmoflow",
        domain="Computational Cosmology",
        layers=tuple(layers),
        batch=batch,
        input_bytes_per_sample=4 * 128**3 * 2.0,  # uint16 voxels
        description="3-D CNN over dark-matter density volumes",
    )


def build_bert(batch: int = 64, seq: int = 128) -> ModelSpec:
    d, heads, n_layers = 768, 12, 12
    layers: list[Layer] = [
        Embedding("bert/embed", 30522, d, lookups_per_sample=seq),
    ]
    for i in range(n_layers):
        layers.append(Attention(f"bert/l{i}/attn", d, heads, seq))
        layers.append(LayerNorm(f"bert/l{i}/ln1", float(seq * d)))
        layers.append(Dense(f"bert/l{i}/ffn_up", d, 4 * d))
        layers.append(Activation(f"bert/l{i}/gelu", float(seq * 4 * d), 8.0))
        layers.append(Dense(f"bert/l{i}/ffn_down", 4 * d, d))
        layers.append(LayerNorm(f"bert/l{i}/ln2", float(seq * d)))
    layers.append(Dense("bert/pooler", d, d))
    return ModelSpec(
        name="BERT",
        domain="Natural Language Processing",
        layers=tuple(layers),
        batch=batch,
        input_bytes_per_sample=seq * 768 * 4.0,  # synthetic float inputs
        description="12-layer Transformer encoder (BERT-base)",
    )


def build_ncf(batch: int = 8192) -> ModelSpec:
    layers: list[Layer] = [
        Embedding("ncf/user_embed", 138_000, 64),
        Embedding("ncf/item_embed", 27_000, 64),
        Dense("ncf/mlp1", 128, 256),
        Activation("ncf/relu1", 256),
        Dense("ncf/mlp2", 256, 128),
        Activation("ncf/relu2", 128),
        Dense("ncf/mlp3", 128, 64),
        Activation("ncf/relu3", 64),
        Dense("ncf/output", 128, 1),
    ]
    return ModelSpec(
        name="NCF",
        domain="Recommender Systems",
        layers=tuple(layers),
        batch=batch,
        input_bytes_per_sample=16.0,
        description="Neural collaborative filtering (MovieLens-scale)",
    )


# ---------------------------------------------------------------------------
# Single-layer benchmarks
# ---------------------------------------------------------------------------


def build_gemm_layer(batch: int = 8, n: int = 4096) -> ModelSpec:
    """The paper's 'GEMM' row: a large dense layer whose fresh operands
    are staged every iteration (hence its 79.9 % %Mem)."""
    return ModelSpec(
        name="GEMM",
        domain="Single Layer",
        layers=(Dense("gemm/dense", n, n),),
        batch=batch * n // 8,  # (batch*n/8 x n) @ (n x n)
        input_bytes_per_sample=n * 4.0 * 1.5,
        mixed_input_ratio=0.5,  # fp16 staging
        description="Isolated large dense GEMM",
    )


def build_lstm_layer(batch: int = 32) -> ModelSpec:
    return ModelSpec(
        name="LSTM",
        domain="Single Layer",
        layers=(Lstm("lstm", 1024, 1024, seq=100),),
        batch=batch,
        input_bytes_per_sample=100 * 1024 * 4.0,
        mixed_input_ratio=0.5,
        description="Single cuDNN LSTM layer",
    )


def build_gru_layer(batch: int = 32) -> ModelSpec:
    return ModelSpec(
        name="GRU",
        domain="Single Layer",
        layers=(Gru("gru", 1024, 1024, seq=100),),
        batch=batch,
        input_bytes_per_sample=100 * 1024 * 4.0,
        mixed_input_ratio=0.5,
        description="Single cuDNN GRU layer",
    )


def build_conv2d_layer(batch: int = 32) -> ModelSpec:
    conv = Conv2D("conv2d", 64, 64, 224, 224, tc_fraction=0.02)
    return ModelSpec(
        name="Conv2D",
        domain="Single Layer",
        layers=(conv,),
        batch=batch,
        input_bytes_per_sample=64 * 224 * 224 * 2.0,
        mixed_input_ratio=1.0,  # apex casts on-device; staging unchanged
        description="Isolated 3x3 convolution (memory-bound shape)",
    )


def build_attention_layer(batch: int = 32) -> ModelSpec:
    return ModelSpec(
        name="Attention",
        domain="Single Layer",
        layers=(Attention("attention", 1024, 16, seq=512),),
        batch=batch,
        input_bytes_per_sample=512 * 1024 * 4.0,
        mixed_input_ratio=0.5,
        description="Isolated multi-head self-attention block",
    )


MODEL_BUILDERS: dict[str, Callable[[], ModelSpec]] = {
    "BERT": build_bert,
    "Cosmoflow": build_cosmoflow,
    "VGG16": build_vgg16,
    "Resnet50": build_resnet50,
    "DeepLabV3": build_deeplabv3,
    "SSD300": build_ssd300,
    "NCF": build_ncf,
    "GEMM": build_gemm_layer,
    "GRU": build_gru_layer,
    "LSTM": build_lstm_layer,
    "Conv2D": build_conv2d_layer,
    "Attention": build_attention_layer,
}


def model_names() -> list[str]:
    """Table IV row order."""
    return list(MODEL_BUILDERS)


def build_model(name: str) -> ModelSpec:
    """Build a model by its Table IV name (case-insensitive)."""
    for key, builder in MODEL_BUILDERS.items():
        if key.lower() == name.lower():
            return builder()
    raise WorkloadError(
        f"unknown model {name!r}; known: {sorted(MODEL_BUILDERS)}"
    )

"""Automatic mixed precision policy (the apex stand-in).

``PrecisionPolicy("fp32")`` runs everything in binary32 on the vector
cores.  ``PrecisionPolicy("mixed")`` reproduces what apex + cuDNN do on
a V100:

* GEMM-backed ops run in fp16.  The share given by each op's
  ``tc_fraction`` lands on the matrix engine; the rest runs fp16 on the
  vector cores (2x fp32 rate on Volta) — cuDNN's algorithm heuristics
  leave many convolution shapes off the TCs, which is why the convnets'
  %TC columns in Table IV are small.
* Converted ops move fewer bytes (fp16 activations), with a cast /
  loss-scaling surcharge.
* Pointwise ops run on fp16 activations too, but layout transforms eat
  part of that win (``pointwise_traffic_ratio``).
* Ops marked ``amp_convertible=False`` (3-D convolutions) stay fp32.
* On devices without fast fp16 anywhere (consumer Pascal), mixed mode
  degenerates to fp32 plus the cast overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.hardware.specs import DeviceSpec

__all__ = ["PrecisionPolicy", "device_fp16_vector"]


def device_fp16_vector(device: DeviceSpec) -> bool:
    """Does the device have a non-matrix fp16 path worth using?"""
    try:
        fp16 = device.peak("fp16", allow_matrix=False)
    except Exception:
        return False
    return fp16 > device.peak("fp32", allow_matrix=False) * 1.5


@dataclass(frozen=True)
class PrecisionPolicy:
    """Precision mode for a training run."""

    mode: str  # "fp32" | "mixed"
    #: byte shrink of converted GEMM-backed ops (fp16 activations)
    gemm_traffic_ratio: float = 0.55
    #: byte shrink of pointwise ops (fp16 data minus layout transforms)
    pointwise_traffic_ratio: float = 0.80
    #: cast + loss-scaling surcharge on converted GEMM-backed ops
    cast_overhead_ratio: float = 0.10
    #: fp16 vector-core fallback kernels run below tuned-fp32 efficiency
    fallback_efficiency: float = 0.70

    def __post_init__(self) -> None:
        if self.mode not in ("fp32", "mixed"):
            raise WorkloadError(f"unknown precision mode {self.mode!r}")

    @property
    def is_mixed(self) -> bool:
        return self.mode == "mixed"

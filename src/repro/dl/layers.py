"""Neural-network layers and the forward ops they lower to.

Every layer produces a list of :class:`Op` records for one forward pass
at a given batch size.  An :class:`Op` carries the roofline inputs
(flops, bytes) plus the two flags the mixed-precision story needs:

* ``gemm_backed`` — the op is matrix-multiply shaped (dense layers,
  conv-as-implicit-GEMM, recurrent gates, attention products);
* ``tc_capable`` — a Tensor-Core implementation exists in the vendor
  libraries.  Notably 3-D convolutions had *no* TC path at the paper's
  time (its Table IV caveat for Cosmoflow), so ``Conv3D`` ops are
  gemm-backed but not tc-capable.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.sim.kernels import KernelKind

__all__ = [
    "Op",
    "Layer",
    "Dense",
    "Conv2D",
    "Conv3D",
    "Lstm",
    "Gru",
    "Attention",
    "Embedding",
    "BatchNorm",
    "LayerNorm",
    "Activation",
    "Pool",
    "Softmax",
]

_E32 = 4.0  # bytes per fp32 activation element


@dataclass(frozen=True)
class Op:
    """One lowered forward operation.

    ``tc_fraction`` models cuDNN/cuBLAS algorithm selection: only that
    share of the op's flops gets a Tensor-Core kernel under mixed
    precision; the remainder runs fp16 on the vector cores (or fp32
    when the device has no fast fp16).  ``amp_convertible=False`` pins
    the op to fp32 even under AMP (3-D convolutions at the paper's
    time).  ``mixed_traffic_ratio`` overrides the policy's default
    byte shrink — cuDNN's persistent RNN kernels keep weights on-chip,
    which is how LSTM gains more than the raw GEMM ratio (the paper's
    Table IV caveat).
    """

    name: str
    kind: KernelKind
    flops: float
    nbytes: float
    gemm_backed: bool = False
    tc_capable: bool = False
    tc_fraction: float = 1.0
    amp_convertible: bool = True
    mixed_traffic_ratio: float | None = None
    launch_count: int = 1  # kernels this op issues in eager fp32 mode
    weight_elems: float = 0.0  # parameters touched (for optimizer cost)

    def __post_init__(self) -> None:
        if self.flops < 0 or self.nbytes < 0:
            raise WorkloadError(f"op {self.name!r}: negative work")
        if not 0.0 <= self.tc_fraction <= 1.0:
            raise WorkloadError(f"op {self.name!r}: tc_fraction out of range")


class Layer(abc.ABC):
    """A network layer; ``ops(batch)`` lowers one forward pass."""

    name: str

    @abc.abstractmethod
    def ops(self, batch: int) -> list[Op]:
        ...

    @abc.abstractmethod
    def output_elems(self, batch: int) -> float:
        """Activation elements produced (drives elementwise/bwd costs)."""


@dataclass(frozen=True)
class Dense(Layer):
    """Fully connected layer: one (batch x in) @ (in x out) GEMM."""

    name: str
    in_features: int
    out_features: int

    def ops(self, batch: int) -> list[Op]:
        m, k, n = batch, self.in_features, self.out_features
        return [
            Op(
                f"{self.name}/gemm",
                KernelKind.GEMM,
                flops=2.0 * m * n * k,
                nbytes=_E32 * (m * k + k * n + m * n),
                gemm_backed=True,
                tc_capable=True,
                weight_elems=float(k * n),
            )
        ]

    def output_elems(self, batch: int) -> float:
        return float(batch * self.out_features)


@dataclass(frozen=True)
class Conv2D(Layer):
    """2-D convolution lowered as implicit GEMM (the cuDNN TC path).

    ``tc_fraction`` is the share of its flops cuDNN's heuristics place
    on Tensor-Core kernels for this shape family (CALIBRATED per model
    against Table IV's %TC columns).
    """

    name: str
    cin: int
    cout: int
    h: int
    w: int
    kernel: int = 3
    stride: int = 1
    tc_fraction: float = 0.5

    @property
    def hout(self) -> int:
        return max(1, self.h // self.stride)

    @property
    def wout(self) -> int:
        return max(1, self.w // self.stride)

    def ops(self, batch: int) -> list[Op]:
        flops = (
            2.0 * batch * self.cout * self.hout * self.wout
            * self.cin * self.kernel * self.kernel
        )
        nbytes = _E32 * (
            batch * self.cin * self.h * self.w
            + self.cout * self.cin * self.kernel**2
            + batch * self.cout * self.hout * self.wout
        )
        return [
            Op(
                f"{self.name}/conv2d",
                KernelKind.CONV2D,
                flops=flops,
                nbytes=nbytes,
                gemm_backed=True,
                tc_capable=True,
                tc_fraction=self.tc_fraction,
                weight_elems=float(self.cout * self.cin * self.kernel**2),
            )
        ]

    def output_elems(self, batch: int) -> float:
        return float(batch * self.cout * self.hout * self.wout)


@dataclass(frozen=True)
class Conv3D(Layer):
    """3-D convolution — **no Tensor-Core implementation** existed at
    the paper's time, so Cosmoflow gains almost nothing from AMP."""

    name: str
    cin: int
    cout: int
    d: int
    h: int
    w: int
    kernel: int = 3
    stride: int = 1

    def _out(self, dim: int) -> int:
        return max(1, dim // self.stride)

    def ops(self, batch: int) -> list[Op]:
        dout, hout, wout = self._out(self.d), self._out(self.h), self._out(self.w)
        flops = (
            2.0 * batch * self.cout * dout * hout * wout
            * self.cin * self.kernel**3
        )
        nbytes = _E32 * (
            batch * self.cin * self.d * self.h * self.w
            + self.cout * self.cin * self.kernel**3
            + batch * self.cout * dout * hout * wout
        )
        return [
            Op(
                f"{self.name}/conv3d",
                KernelKind.CONV3D,
                flops=flops,
                nbytes=nbytes,
                gemm_backed=True,
                tc_capable=False,
                amp_convertible=False,  # no fp16 conv3d path at the time
                weight_elems=float(self.cout * self.cin * self.kernel**3),
            )
        ]

    def output_elems(self, batch: int) -> float:
        return float(
            batch * self.cout * self._out(self.d) * self._out(self.h)
            * self._out(self.w)
        )


def _recurrent_ops(
    name: str,
    batch: int,
    input_size: int,
    hidden: int,
    seq: int,
    n_gates: int,
    persistence: float,
) -> list[Op]:
    """Shared LSTM/GRU lowering: per time step, gate GEMMs (input +
    recurrent) and element-wise gate math.  In reduced precision cuDNN
    switches to a *persistent* TC algorithm that keeps the recurrent
    weights on-chip — modelled by the ``persistence`` traffic ratio,
    which is why LSTM's measured gain (5.69x) exceeds the raw GEMM
    ratio (the paper's Table IV caveat)."""
    gate_gemm_flops = 2.0 * batch * n_gates * hidden * (input_size + hidden)
    gate_bytes = _E32 * (
        batch * (input_size + hidden)
        + n_gates * hidden * (input_size + hidden)
        + batch * n_gates * hidden
    )
    ops: list[Op] = []
    ops.append(
        Op(
            f"{name}/gate_gemms",
            KernelKind.GEMM,
            flops=gate_gemm_flops * seq,
            nbytes=gate_bytes * seq,
            gemm_backed=True,
            tc_capable=True,
            mixed_traffic_ratio=persistence,
            launch_count=2 * seq,  # per-timestep kernels in fp32 mode;
            # the mixed-precision persistent algorithm fuses them away.
            weight_elems=float(n_gates * hidden * (input_size + hidden)),
        )
    )
    ops.append(
        Op(
            f"{name}/gate_pointwise",
            KernelKind.ELEMENTWISE,
            flops=12.0 * batch * hidden * seq,
            nbytes=_E32 * 6.0 * batch * hidden * seq,
        )
    )
    return ops


@dataclass(frozen=True)
class Lstm(Layer):
    """Long Short-Term Memory layer (4 gates)."""

    name: str
    input_size: int
    hidden: int
    seq: int

    def ops(self, batch: int) -> list[Op]:
        return _recurrent_ops(
            self.name, batch, self.input_size, self.hidden, self.seq, 4,
            persistence=0.12,
        )

    def output_elems(self, batch: int) -> float:
        return float(batch * self.hidden * self.seq)


@dataclass(frozen=True)
class Gru(Layer):
    """Gated Recurrent Unit layer (3 gates; less mature persistent
    kernels than LSTM at the paper's time)."""

    name: str
    input_size: int
    hidden: int
    seq: int

    def ops(self, batch: int) -> list[Op]:
        return _recurrent_ops(
            self.name, batch, self.input_size, self.hidden, self.seq, 3,
            persistence=0.28,
        )

    def output_elems(self, batch: int) -> float:
        return float(batch * self.hidden * self.seq)


@dataclass(frozen=True)
class Attention(Layer):
    """Multi-head self-attention block (QKV + scores + context + out)."""

    name: str
    d_model: int
    heads: int
    seq: int

    def ops(self, batch: int) -> list[Op]:
        b, s, d = batch, self.seq, self.d_model
        proj_flops = 2.0 * b * s * d * d  # per projection
        score_flops = 2.0 * b * self.heads * s * s * (d // self.heads)
        ops = [
            Op(
                f"{self.name}/qkv_proj",
                KernelKind.GEMM,
                flops=3.0 * proj_flops,
                nbytes=_E32 * (4.0 * b * s * d + 3.0 * d * d),
                gemm_backed=True,
                tc_capable=True,
                weight_elems=3.0 * d * d,
            ),
            Op(
                f"{self.name}/qk_scores",
                KernelKind.GEMM,
                flops=score_flops,
                nbytes=_E32 * (2.0 * b * s * d + b * self.heads * s * s),
                gemm_backed=True,
                tc_capable=True,
            ),
            Op(
                f"{self.name}/softmax",
                KernelKind.ELEMENTWISE,
                flops=5.0 * b * self.heads * s * s,
                nbytes=_E32 * 2.0 * b * self.heads * s * s,
            ),
            Op(
                f"{self.name}/context",
                KernelKind.GEMM,
                flops=score_flops,
                nbytes=_E32 * (b * self.heads * s * s + 2.0 * b * s * d),
                gemm_backed=True,
                tc_capable=True,
            ),
            Op(
                f"{self.name}/out_proj",
                KernelKind.GEMM,
                flops=proj_flops,
                nbytes=_E32 * (2.0 * b * s * d + d * d),
                gemm_backed=True,
                tc_capable=True,
                weight_elems=float(d * d),
            ),
        ]
        return ops

    def output_elems(self, batch: int) -> float:
        return float(batch * self.seq * self.d_model)


@dataclass(frozen=True)
class Embedding(Layer):
    """Lookup table; pure memory traffic (NCF's dominant cost)."""

    name: str
    vocab: int
    dim: int
    lookups_per_sample: int = 1

    def ops(self, batch: int) -> list[Op]:
        n = batch * self.lookups_per_sample
        return [
            Op(
                f"{self.name}/embedding",
                KernelKind.TABLE_LOOKUP,
                flops=0.0,
                nbytes=_E32 * n * self.dim * 2.0,
                weight_elems=float(n * self.dim),  # sparse rows touched
            )
        ]

    def output_elems(self, batch: int) -> float:
        return float(batch * self.lookups_per_sample * self.dim)


def _pointwise(name: str, elems: float, flops_per: float, streams: float) -> Op:
    return Op(
        name,
        KernelKind.ELEMENTWISE,
        flops=flops_per * elems,
        nbytes=_E32 * streams * elems,
    )


@dataclass(frozen=True)
class BatchNorm(Layer):
    name: str
    elems_per_sample: float

    def ops(self, batch: int) -> list[Op]:
        return [_pointwise(f"{self.name}/batchnorm",
                           batch * self.elems_per_sample, 8.0, 3.0)]

    def output_elems(self, batch: int) -> float:
        return batch * self.elems_per_sample


@dataclass(frozen=True)
class LayerNorm(Layer):
    name: str
    elems_per_sample: float

    def ops(self, batch: int) -> list[Op]:
        return [_pointwise(f"{self.name}/layernorm",
                           batch * self.elems_per_sample, 8.0, 3.0)]

    def output_elems(self, batch: int) -> float:
        return batch * self.elems_per_sample


@dataclass(frozen=True)
class Activation(Layer):
    name: str
    elems_per_sample: float
    flops_per_elem: float = 2.0

    def ops(self, batch: int) -> list[Op]:
        return [_pointwise(f"{self.name}/activation",
                           batch * self.elems_per_sample,
                           self.flops_per_elem, 2.0)]

    def output_elems(self, batch: int) -> float:
        return batch * self.elems_per_sample


@dataclass(frozen=True)
class Pool(Layer):
    name: str
    elems_per_sample: float  # input elements

    def ops(self, batch: int) -> list[Op]:
        return [_pointwise(f"{self.name}/pool",
                           batch * self.elems_per_sample, 1.0, 1.25)]

    def output_elems(self, batch: int) -> float:
        return batch * self.elems_per_sample / 4.0


@dataclass(frozen=True)
class Softmax(Layer):
    name: str
    elems_per_sample: float

    def ops(self, batch: int) -> list[Op]:
        return [_pointwise(f"{self.name}/softmax",
                           batch * self.elems_per_sample, 5.0, 2.0)]

    def output_elems(self, batch: int) -> float:
        return batch * self.elems_per_sample

"""Deep-Learning substrate: the PyTorch + apex + nvprof stand-in.

Models are layer graphs (:mod:`repro.dl.layers`, :mod:`repro.dl.models`)
lowered to kernel launches (:mod:`repro.dl.lowering`) under a precision
policy (:mod:`repro.dl.amp` — the apex-like automatic mixed precision).
A training step executes on a simulated device
(:mod:`repro.dl.training`) and the nvprof-style profiler
(:mod:`repro.dl.nvprof`) aggregates the Table IV columns: FP32→mixed
speedup, %TC, %TC-comp and %Mem.
"""

from repro.dl.layers import (
    Activation,
    Attention,
    BatchNorm,
    Conv2D,
    Conv3D,
    Dense,
    Embedding,
    Gru,
    LayerNorm,
    Lstm,
    Op,
    Pool,
    Softmax,
)
from repro.dl.models import MODEL_BUILDERS, build_model, model_names
from repro.dl.amp import PrecisionPolicy
from repro.dl.training import TrainingResult, inference_step, train_step
from repro.dl.nvprof import MixedPrecisionReport, profile_mixed_precision

__all__ = [
    "Op",
    "Dense",
    "Conv2D",
    "Conv3D",
    "Lstm",
    "Gru",
    "Attention",
    "Embedding",
    "BatchNorm",
    "LayerNorm",
    "Activation",
    "Pool",
    "Softmax",
    "build_model",
    "model_names",
    "MODEL_BUILDERS",
    "PrecisionPolicy",
    "train_step",
    "inference_step",
    "TrainingResult",
    "profile_mixed_precision",
    "MixedPrecisionReport",
]

"""Lower a model to the kernel stream of one training step.

A step is: stage the input batch (H2D), forward all layer ops, backward
(data-gradient + weight-gradient for GEMM-backed ops, one pass for
pointwise ops), optimizer update, loss readback (D2H).  This mirrors
what nvprof sees when profiling one PyTorch iteration — including the
host<->device traffic that Table IV's %Mem column isolates, and the
per-kernel framework/launch overhead that makes mixed precision a *net
loss* for tiny-kernel models like NCF (its 0.97x row).
"""

from __future__ import annotations

from repro.dl.amp import PrecisionPolicy, device_fp16_vector
from repro.dl.layers import Op
from repro.dl.models import ModelSpec
from repro.hardware.specs import DeviceSpec
from repro.sim.kernels import KernelKind, KernelLaunch

__all__ = ["lower_training_step", "lower_inference_step", "FRAMEWORK_OVERHEAD_S"]

#: Eager-mode framework + launch overhead per kernel (PyTorch ~10-30 us).
FRAMEWORK_OVERHEAD_S = 2.0e-5


def _op_kernels(
    op: Op,
    device: DeviceSpec,
    policy: PrecisionPolicy,
    *,
    suffix: str,
    flop_factor: float = 1.0,
) -> list[KernelLaunch]:
    flops = op.flops * flop_factor
    nbytes = op.nbytes * flop_factor
    if not policy.is_mixed or not op.amp_convertible:
        return [
            KernelLaunch(
                op.kind,
                f"{op.name}/{suffix}",
                flops=flops,
                nbytes=nbytes,
                fmt="fp32",
                min_seconds=FRAMEWORK_OVERHEAD_S * op.launch_count,
                tag="cuda",
            )
        ]
    kernels: list[KernelLaunch] = []
    if op.gemm_backed:
        ratio = (
            op.mixed_traffic_ratio
            if op.mixed_traffic_ratio is not None
            else policy.gemm_traffic_ratio
        )
        me = device.matrix_engine
        fp16_vec = device_fp16_vector(device)
        f = op.tc_fraction if (op.tc_capable and me is not None) else 0.0
        if f > 0.0:
            kernels.append(
                KernelLaunch(
                    op.kind,
                    f"{op.name}/{suffix}_tc",
                    flops=flops * f,
                    nbytes=nbytes * ratio * f,
                    fmt=me.multiply_format or "fp16",
                    unit=me.name,
                    min_seconds=FRAMEWORK_OVERHEAD_S,
                    tag="tc",
                )
            )
        if f < 1.0:
            fmt = "fp16" if fp16_vec else "fp32"
            bytes_ratio = ratio if fmt == "fp16" else 1.0
            # Pin the fallback to the vector cores — it is precisely the
            # work cuDNN's heuristics kept OFF the matrix engine, and it
            # runs below the tuned-fp32 efficiency (layout conversions).
            vec_unit = device.best_unit(fmt, allow_matrix=False).name
            ineff = 1.0 / policy.fallback_efficiency if fmt == "fp16" else 1.0
            kernels.append(
                KernelLaunch(
                    op.kind,
                    f"{op.name}/{suffix}",
                    flops=flops * (1.0 - f) * ineff,
                    nbytes=nbytes * bytes_ratio * (1.0 - f),
                    fmt=fmt,
                    unit=vec_unit,
                    min_seconds=FRAMEWORK_OVERHEAD_S,
                    tag="cuda",
                )
            )
        cast = nbytes * ratio * policy.cast_overhead_ratio
        kernels.append(
            KernelLaunch(
                KernelKind.ELEMENTWISE,
                f"{op.name}/{suffix}_cast",
                nbytes=cast,
                # Bandwidth-bound either way; fp32 placement keeps the
                # kernel valid on devices whose only fp16 is the ME
                # (Power10, the systolic accelerators).
                fmt="fp32",
                min_seconds=FRAMEWORK_OVERHEAD_S,
                tag="amp_overhead",
            )
        )
    else:
        kernels.append(
            KernelLaunch(
                op.kind,
                f"{op.name}/{suffix}",
                flops=flops,
                nbytes=nbytes * policy.pointwise_traffic_ratio,
                fmt="fp32",
                min_seconds=FRAMEWORK_OVERHEAD_S,
                tag="cuda",
            )
        )
    return kernels


def lower_training_step(
    model: ModelSpec,
    device: DeviceSpec,
    policy: PrecisionPolicy,
) -> list[KernelLaunch]:
    """The full kernel list of one training iteration."""
    kernels: list[KernelLaunch] = []
    batch = model.batch
    input_bytes = model.input_bytes_per_sample * batch
    if policy.is_mixed:
        input_bytes *= model.mixed_input_ratio
    kernels.append(
        KernelLaunch.memcpy(input_bytes, direction="h2d", name="load_batch")
    )

    ops = model.forward_ops()
    # Forward.
    for op in ops:
        kernels.extend(_op_kernels(op, device, policy, suffix="fwd"))
    # Backward: GEMM-backed ops run dgrad + wgrad (2x fwd work); pointwise
    # ops run one gradient pass of equal size; lookups scatter gradients.
    for op in reversed(ops):
        factor = 2.0 if op.gemm_backed else 1.6
        kernels.extend(
            _op_kernels(op, device, policy, suffix="bwd", flop_factor=factor)
        )
    # Optimizer: fp32 master weights (read grad + weight + momentum,
    # write weight + momentum).
    weights = sum(op.weight_elems for op in ops)
    if weights > 0:
        kernels.append(
            KernelLaunch(
                KernelKind.ELEMENTWISE,
                "optimizer_step",
                flops=6.0 * weights,
                nbytes=4.0 * 5.0 * weights,
                fmt="fp32",
                min_seconds=FRAMEWORK_OVERHEAD_S,
                tag="optimizer",
            )
        )
    kernels.append(
        KernelLaunch.memcpy(4096.0, direction="d2h", name="loss_readback")
    )
    return kernels


def lower_inference_step(
    model: ModelSpec,
    device: DeviceSpec,
    policy: PrecisionPolicy,
) -> list[KernelLaunch]:
    """One inference iteration: staging + forward + result readback.

    No backward pass, no optimizer — the MLPerf-inference-style view of
    the same models (the paper's Table IV measures training; inference
    shifts the balance further toward memcpy and framework overhead).
    """
    kernels: list[KernelLaunch] = []
    input_bytes = model.input_bytes_per_sample * model.batch
    if policy.is_mixed:
        input_bytes *= model.mixed_input_ratio
    kernels.append(
        KernelLaunch.memcpy(input_bytes, direction="h2d", name="load_batch")
    )
    ops = model.forward_ops()
    for op in ops:
        kernels.extend(_op_kernels(op, device, policy, suffix="fwd"))
    # Output readback: the last layer's activations.
    out_elems = 4.0 * model.batch * 1024.0
    kernels.append(
        KernelLaunch.memcpy(out_elems, direction="d2h", name="result_readback")
    )
    return kernels

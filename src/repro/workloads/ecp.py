"""ECP proxy applications (11 of the 12; CANDLE is covered by repro.dl).

Fig. 3 highlights: Laghos 41.24 % GEMM (MFEM partial-assembly tensor
contractions), Nekbone 4.58 % GEMM (hand-written ``mxm`` kernels the
authors instrumented — their footnote 8), miniFE 9.38 % non-GEMM BLAS
(library-called level-1 vector ops).  The remaining eight never touch
dense linear algebra.
"""

from __future__ import annotations

from repro.profiling.regions import RegionClass
from repro.sim.kernels import KernelKind, KernelLaunch
from repro.workloads import patterns
from repro.workloads.base import (
    KernelMixWorkload,
    Workload,
    WorkloadMeta,
)

__all__ = ["Laghos", "Nekbone", "MiniFE", "ECP_WORKLOADS"]

_M = 1.0e6


class Laghos(Workload):
    """LAGrangian High-Order Solver: compressible hydrodynamics on
    curved meshes.

    The dominant cost is MFEM's partial-assembly force operator — batched
    small dense contractions the paper's instrumentation counts as GEMM
    — followed by a sparse CG solve for velocity and quadrature-point
    physics.  Element count and quadrature work are CALIBRATED to land
    the GEMM share at Fig. 3's 41.24 %.
    """

    def __init__(self, elements: int = 4096, order: int = 3,
                 iterations: int = 60) -> None:
        self.meta = WorkloadMeta(
            name="Laghos",
            suite="ECP",
            domain="Physics",
            description="High-order Lagrangian shock hydrodynamics",
        )
        self.elements = elements
        self.order = order
        self.iterations = iterations

    def run(self, *, scale: float = 1.0) -> None:
        iters = max(1, round(self.iterations * scale))
        p = self.order
        ndof = (p + 1) ** 3
        nquad = (p + 2) ** 3
        elems = self.elements
        # Batched force-operator contraction: per element a (ndof x nquad)
        # times (nquad x ndof)-shaped pair of tensor contractions.
        force_flops = 2.0 * elems * ndof * nquad * (2 * (p + 1)) * 3
        force = KernelLaunch(
            KernelKind.GEMM,
            "mfem_batched_matmul",
            flops=force_flops,
            nbytes=8.0 * elems * (ndof + nquad) * 6,
            fmt="fp64",
        )
        quad = KernelLaunch(
            KernelKind.ELEMENTWISE,
            "quadrature_physics",
            flops=440.0 * elems * nquad,
            nbytes=96.0 * elems * nquad,
            fmt="fp64",
        )
        nrows = elems * ndof // 2
        cg_spmv = KernelLaunch.spmv(40 * nrows, nrows, name="cg_mass_solve")
        vec = KernelLaunch.blas1(nrows, flops_per_element=2.0, streams=3,
                                 name="vector_update")
        self.standard_init(8.0 * elems * ndof * 8)
        for _ in range(iters):
            with self._region("force_operator"):
                # The contraction itself is instrumented as GEMM …
                with self._region("mfem_batched_matmul"):
                    self._emit(force)
                # … the quadrature-point update is Laghos' own loop.
                self._emit(quad)
            with self._region("cg_solver", RegionClass.OTHER):
                for _ in range(6):
                    self._emit(cg_spmv)
                    self._emit(vec)
        self.standard_post()


class Nekbone(Workload):
    """Nek5000 proxy: spectral-element Poisson solve via CG.

    The local stiffness application is a chain of small ``mxm`` matrix
    products (lx^2 x lx shapes) — hand-written Fortran the paper found
    and instrumented as GEMM (4.58 % of runtime); gather-scatter and the
    CG vector work dominate.
    """

    def __init__(self, elements: int = 512, lx: int = 10,
                 iterations: int = 100) -> None:
        self.meta = WorkloadMeta(
            name="Nekbone",
            suite="ECP",
            domain="Engineering (Mechanics, CFD)",
            description="Spectral-element CG kernel of Nek5000",
        )
        self.elements = elements
        self.lx = lx
        self.iterations = iterations

    def run(self, *, scale: float = 1.0) -> None:
        iters = max(1, round(self.iterations * scale))
        lx = self.lx
        elems = self.elements
        npts = elems * lx**3
        # ax = D^T (G (D u)): 6 mxm of (lx^2, lx) @ (lx, lx) per element.
        mxm_flops = 6.0 * elems * 2.0 * lx**4
        mxm = KernelLaunch(
            KernelKind.GEMM,
            "nek_mxm_matmul",
            flops=mxm_flops,
            nbytes=8.0 * elems * lx**3 * 2,
            fmt="fp64",
        )
        geom = KernelLaunch(
            KernelKind.ELEMENTWISE,
            "geometry_factors",
            flops=15.0 * npts,
            nbytes=7 * 8.0 * npts,
            fmt="fp64",
        )
        gs = KernelLaunch(
            KernelKind.TABLE_LOOKUP,
            "gather_scatter",
            flops=1.0 * npts,
            nbytes=24.0 * npts,
        )
        vec = KernelLaunch.blas1(npts, flops_per_element=2.0, streams=3,
                                 name="cg_vector_ops")
        dot = KernelLaunch.blas1(npts, flops_per_element=2.0, streams=2,
                                 name="glsc3_own")
        self.standard_init(8.0 * npts * 10)
        for _ in range(iters):
            with self._region("cg_iteration", RegionClass.OTHER):
                with self._region("nek_mxm_matmul"):
                    self._emit(mxm)
                self._emit(geom)
                self._emit(geom)
                for _ in range(3):
                    self._emit(gs)
                for _ in range(9):
                    self._emit(vec)
                self._emit(dot)
                self._emit(dot)
        self.standard_post()


class MiniFE(Workload):
    """Unstructured implicit finite elements; its CG calls *library*
    level-1 BLAS (daxpy/ddot) — the 9.38 % BLAS bar of Fig. 3 — while
    SpMV and assembly are its own code."""

    def __init__(self, nrows: int = 2_000_000, iterations: int = 60) -> None:
        self.meta = WorkloadMeta(
            name="miniFE",
            suite="ECP",
            domain="Physics",
            description="Implicit FE solve with CG",
        )
        self.nrows = nrows
        self.iterations = iterations

    def run(self, *, scale: float = 1.0) -> None:
        iters = max(1, round(self.iterations * scale))
        nrows = self.nrows
        nnz = 27 * nrows
        spmv = KernelLaunch.spmv(nnz, nrows, name="minife_spmv")
        axpy = KernelLaunch.blas1(nrows, flops_per_element=2.0, streams=3,
                                  name="daxpy")
        ddot = KernelLaunch.blas1(nrows, flops_per_element=2.0, streams=2,
                                  name="ddot")
        assemble = KernelLaunch(
            KernelKind.BRANCHY, "fe_assembly",
            flops=3.0 * nnz / 10, nbytes=6.0 * nnz / 10,
        )
        self.standard_init(12.0 * nnz)
        for _ in range(iters):
            with self._region("cg_iteration", RegionClass.OTHER):
                self._emit(spmv)
                self._emit(assemble)
                with self._region("daxpy"):
                    self._emit(axpy)
                with self._region("ddot"):
                    self._emit(ddot)
        self.standard_post()


def _mix(name: str, domain: str, phases, iterations: int = 10,
         notes: str = "") -> KernelMixWorkload:
    return KernelMixWorkload(
        WorkloadMeta(name=name, suite="ECP", domain=domain, notes=notes),
        phases,
        iterations=iterations,
    )


ECP_WORKLOADS: tuple[Workload, ...] = (
    _mix("AMG", "Physics and Bioscience", patterns.implicit_sparse(
        nnz=120 * _M, nrows=6 * _M)),
    _mix("CoMD", "Material Science/Engineering", patterns.nbody_md()),
    Laghos(),
    _mix("MACSio", "Math/Computer Science", patterns.io_bound()),
    _mix("miniAMR", "Geoscience/Earthscience", patterns.adaptive_mesh()),
    MiniFE(),
    _mix("miniTRI", "Math/Computer Science", patterns.graph_analytics()),
    Nekbone(),
    _mix("SW4lite", "Geoscience/Earthscience", patterns.wave_propagation()),
    _mix("SWFFT", "Physics", patterns.spectral_fft()),
    _mix("XSBench", "Physics", patterns.monte_carlo_transport()),
)

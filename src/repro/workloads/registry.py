"""Workload catalogue: every row of Table V, queryable by name or suite.

All lookups resolve through the active scenario overlay
(:mod:`repro.scenario`): overlay workloads extend — or, on a qualified
name collision, shadow — the built-in Table V catalogue.  With no
scenario installed the catalogue is exactly the paper's 77 rows.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.errors import WorkloadError
from repro.workloads.base import Workload

__all__ = [
    "all_workloads",
    "get_workload",
    "workload_names",
    "workloads_by_suite",
    "workloads_by_domain",
    "domain_names",
    "suite_names",
    "EXPECTED_COUNTS",
]

#: Benchmarks per suite, as the paper states them (Sec. III-D1).
EXPECTED_COUNTS = {
    "TOP500": 2,
    "ECP": 11,
    "RIKEN": 8,
    "SPEC CPU": 24,
    "SPEC OMP": 14,
    "SPEC MPI": 18,
}


def _build() -> dict[str, Workload]:
    from repro.workloads.ecp import ECP_WORKLOADS
    from repro.workloads.riken import RIKEN_WORKLOADS
    from repro.workloads.speccpu import SPEC_CPU_WORKLOADS
    from repro.workloads.specmpi import SPEC_MPI_WORKLOADS
    from repro.workloads.specomp import SPEC_OMP_WORKLOADS
    from repro.workloads.top500 import HPCG, HPL

    catalogue: dict[str, Workload] = {}
    for w in (
        (HPL(), HPCG())
        + ECP_WORKLOADS
        + RIKEN_WORKLOADS
        + SPEC_CPU_WORKLOADS
        + SPEC_OMP_WORKLOADS
        + SPEC_MPI_WORKLOADS
    ):
        key = f"{w.meta.suite}/{w.meta.name}"
        if key in catalogue:
            raise WorkloadError(f"duplicate workload {key!r}")
        catalogue[key] = w
    return catalogue


_CATALOGUE: dict[str, Workload] | None = None

_OVERLAY_CACHE_MAX = 32
_overlay_cache: OrderedDict[str, dict[str, Workload]] = OrderedDict()
_overlay_mutex = threading.Lock()


def _builtin_catalogue() -> dict[str, Workload]:
    global _CATALOGUE
    if _CATALOGUE is None:
        _CATALOGUE = _build()
    return _CATALOGUE


def _overlay_workloads() -> dict[str, Workload]:
    """The active scenario's resolved workloads (``{}`` for baseline),
    cached per scenario fingerprint."""
    from repro.scenario.context import active_scenario

    spec = active_scenario()
    if not spec.workloads:
        return {}
    token = spec.fingerprint
    with _overlay_mutex:
        if token in _overlay_cache:
            _overlay_cache.move_to_end(token)
            return _overlay_cache[token]
    from repro.scenario.resolve import resolve_workloads

    resolved = resolve_workloads(spec)
    with _overlay_mutex:
        _overlay_cache[token] = resolved
        _overlay_cache.move_to_end(token)
        while len(_overlay_cache) > _OVERLAY_CACHE_MAX:
            _overlay_cache.popitem(last=False)
    return resolved


def _catalogue() -> dict[str, Workload]:
    builtin = _builtin_catalogue()
    overlay = _overlay_workloads()
    if not overlay:
        return builtin
    merged = dict(builtin)
    merged.update(overlay)  # overlays shadow on qualified-name collision
    return merged


def all_workloads() -> tuple[Workload, ...]:
    """All benchmarks in Table V order (the paper's 77 at baseline),
    plus any active scenario-overlay workloads."""
    return tuple(_catalogue().values())


def workload_names() -> list[str]:
    """Qualified names, ``"SUITE/name"``."""
    return list(_catalogue())


def suite_names() -> tuple[str, ...]:
    return tuple(EXPECTED_COUNTS)


def workloads_by_suite(suite: str) -> tuple[Workload, ...]:
    """All benchmarks of one suite, preserving order."""
    found = tuple(
        w for w in _catalogue().values() if w.meta.suite == suite
    )
    if not found:
        raise WorkloadError(
            f"unknown suite {suite!r}; known: {sorted(EXPECTED_COUNTS)}"
        )
    return found


def domain_names() -> list[str]:
    """Sorted distinct Table V domain labels."""
    return sorted({w.meta.domain for w in _catalogue().values()})


def workloads_by_domain(domain: str) -> tuple[Workload, ...]:
    """All benchmarks of one science/engineering domain (exact label
    or case-insensitive substring, e.g. ``"chem"``)."""
    low = domain.lower()
    found = tuple(
        w for w in _catalogue().values() if low in w.meta.domain.lower()
    )
    if not found:
        raise WorkloadError(
            f"no workloads in domain {domain!r}; known: {domain_names()}"
        )
    return found


def get_workload(name: str) -> Workload:
    """Look up by qualified (``"ECP/Nekbone"``) or bare (``"Nekbone"``)
    name, case-insensitively.  Bare names shared across suites (pop2,
    bwaves, imagick, nab) require qualification."""
    cat = _catalogue()
    low = name.lower()
    if "/" in name:
        for key, w in cat.items():
            if key.lower() == low:
                return w
        raise WorkloadError(f"unknown workload {name!r}")
    matches = [w for k, w in cat.items() if k.split("/", 1)[1].lower() == low]
    if not matches:
        raise WorkloadError(f"unknown workload {name!r}")
    if len(matches) > 1:
        suites = [w.meta.suite for w in matches]
        raise WorkloadError(
            f"ambiguous workload {name!r} (in suites {suites}); "
            f"qualify as 'SUITE/name'"
        )
    return matches[0]

"""Workload base classes and the profiling entry point."""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.hardware.specs import DeviceSpec
from repro.harness.cache import memoize_substrate
from repro.profiling.regions import RegionClass
from repro.profiling.report import UtilizationReport
from repro.profiling.scorep import Profiler
from repro.sim.context import current_context, execution_context
from repro.sim.kernels import KernelKind, KernelLaunch

__all__ = [
    "WorkloadMeta",
    "Workload",
    "PhaseSpec",
    "KernelMixWorkload",
    "profile_workload",
    "profile_all_workloads",
]


@dataclass(frozen=True)
class WorkloadMeta:
    """Catalogue entry (one row of Table V)."""

    name: str
    suite: str  # "TOP500" | "ECP" | "RIKEN" | "SPEC CPU" | "SPEC OMP" | "SPEC MPI"
    domain: str  # Table V science/engineering/AI domain label
    description: str = ""
    openmp: bool = True  # SPEC CPU "(R)" rows lack OpenMP parallelisation
    notes: str = ""


class Workload(abc.ABC):
    """A runnable mini-application.

    Subclasses implement :meth:`run`, which must execute inside an active
    :func:`repro.sim.context.execution_context`; instrumented regions are
    opened on the context's profiler (when present) and all simulated
    work flows through kernel launches.
    """

    meta: WorkloadMeta

    @abc.abstractmethod
    def run(self, *, scale: float = 1.0) -> None:
        """Execute the workload's kernel stream.

        ``scale`` multiplies the iteration counts (not the per-kernel
        sizes), so fractions are scale-invariant but total work isn't —
        handy for benchmarking.
        """

    # Common helpers -------------------------------------------------------

    @staticmethod
    def _ctx():
        return current_context()

    def _emit(self, kernel: KernelLaunch):
        return current_context().launch(kernel)

    def _region(self, name: str, region_class: RegionClass | None = None):
        ctx = current_context()
        if ctx.profiler is not None:
            return ctx.profiler.region(name, region_class)
        import contextlib

        return contextlib.nullcontext()

    def _phase(self, name: str):
        ctx = current_context()
        if ctx.profiler is not None:
            return ctx.profiler.phase(name)
        import contextlib

        return contextlib.nullcontext()

    def standard_init(self, nbytes: float = 256e6) -> None:
        """Initialization phase (excluded from profiles, like the paper's
        Score-P API-based exclusion): read input, allocate, fill."""
        with self._phase("initialization"):
            self._emit(KernelLaunch(KernelKind.IO, "read_input", nbytes=nbytes))
            self._emit(KernelLaunch(KernelKind.MEMSET, "allocate", nbytes=nbytes))

    def standard_post(self, nbytes: float = 64e6) -> None:
        """Post-processing phase (excluded): write results."""
        with self._phase("post-processing"):
            self._emit(KernelLaunch(KernelKind.IO, "write_output", nbytes=nbytes))


@dataclass(frozen=True)
class PhaseSpec:
    """One declarative phase of a :class:`KernelMixWorkload`.

    ``region`` names the instrumented region the kernels run under (it is
    classified by name, so call it ``"dgemm"`` to land in the GEMM
    bucket); ``repeat`` replays the kernel list that many times.
    """

    region: str
    kernels: tuple[KernelLaunch, ...]
    repeat: int = 1
    region_class: RegionClass | None = None

    def __post_init__(self) -> None:
        if self.repeat < 1:
            raise WorkloadError(f"phase {self.region!r}: repeat must be >= 1")
        if not self.kernels:
            raise WorkloadError(f"phase {self.region!r}: no kernels")


class KernelMixWorkload(Workload):
    """Declarative workload: metadata plus an iterated list of phases.

    The main loop replays ``phases`` ``iterations`` times between the
    standard (excluded) init/post phases.
    """

    def __init__(
        self,
        meta: WorkloadMeta,
        phases: tuple[PhaseSpec, ...],
        *,
        iterations: int = 10,
        init_bytes: float = 256e6,
    ) -> None:
        if iterations < 1:
            raise WorkloadError("iterations must be >= 1")
        if not phases:
            raise WorkloadError(f"workload {meta.name!r} has no phases")
        self.meta = meta
        self.phases = phases
        self.iterations = iterations
        self.init_bytes = init_bytes

    def run(self, *, scale: float = 1.0) -> None:
        iters = max(1, round(self.iterations * scale))
        self.standard_init(self.init_bytes)
        for _ in range(iters):
            for phase in self.phases:
                with self._region(phase.region, phase.region_class):
                    for _ in range(phase.repeat):
                        for kernel in phase.kernels:
                            self._emit(kernel)
        self.standard_post()


def profile_workload(
    workload: Workload,
    device: DeviceSpec | str = "system1",
    *,
    scale: float = 1.0,
    compute_numerics: bool = False,
    allow_matrix_engine: bool = False,
) -> UtilizationReport:
    """Run one workload under a fresh profiler and return its Fig. 3 row.

    Defaults mirror the paper's setup: a CPU testbed (System 1) without
    a matrix engine, numerics off (the fractions depend on the kernel
    stream, not the values).
    """
    prof = Profiler()
    with execution_context(
        device,
        profiler=prof,
        compute_numerics=compute_numerics,
        allow_matrix_engine=allow_matrix_engine,
    ):
        workload.run(scale=scale)
    return UtilizationReport.from_profiler(
        prof,
        workload=workload.meta.name,
        suite=workload.meta.suite,
        domain=workload.meta.domain,
    )


@memoize_substrate("workload_profiles")
def profile_all_workloads(
    device: DeviceSpec | str = "system1",
) -> tuple[UtilizationReport, ...]:
    """Profile the full Table V catalogue on one device, in order.

    Memoized as the ``workload_profiles`` substrate: Fig. 3 (the
    utilization sweep) and Fig. 4 (the extrapolation scenarios built
    from those measured fractions) share one set of reports.
    """
    from repro.workloads.registry import all_workloads

    return tuple(profile_workload(w, device) for w in all_workloads())

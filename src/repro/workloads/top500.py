"""TOP500 benchmarks: HPL and HPCG.

HPL is the paper's showcase ME beneficiary (76.81 % GEMM, 0.14 % other
BLAS in Fig. 3); HPCG is its antithesis — the same ranking list, yet a
kernel stream with no dense linear algebra at all.
"""

from __future__ import annotations

import numpy as np

from repro.profiling.regions import RegionClass
from repro.sim.kernels import KernelKind, KernelLaunch
from repro.workloads.base import Workload, WorkloadMeta

__all__ = ["HPL", "HPCG"]


class HPL(Workload):
    """High Performance Linpack: right-looking blocked LU.

    The region structure mirrors the real code: the O(n^3) trailing
    update is a library ``dgemm`` (GEMM bucket) and the row-panel solve a
    ``dtrsm`` (BLAS bucket), while panel factorization, row swaps and
    panel broadcasts are HPL's own code (OTHER) — this is why Fig. 3
    shows HPL at ~77 % GEMM rather than ~99 %: the panel path is
    latency/bandwidth-bound, not flop-bound.

    ``PANEL_TRAFFIC_FACTOR`` is CALIBRATED: the fraction of the panel's
    rank-1-update traffic that actually reaches DRAM (the rest is
    cache-resident).  0.25 lands the System 1 GEMM share at the paper's
    76.8 %.
    """

    PANEL_TRAFFIC_FACTOR = 0.25

    def __init__(self, n: int = 8192, block: int = 128) -> None:
        self.meta = WorkloadMeta(
            name="HPL",
            suite="TOP500",
            domain="Math/Computer Science",
            description="Dense LU solve, the TOP500 yardstick",
        )
        self.n = n
        self.block = block

    def run(self, *, scale: float = 1.0) -> None:
        n = max(self.block * 2, round(self.n * scale ** (1 / 3)))
        nb = self.block
        self.standard_init(8.0 * n * n)
        for j in range(0, n, nb):
            jb = min(nb, n - j)
            rows = n - j
            cols = n - j - jb
            # Panel factorization: HPL's own code — pivot search plus
            # rank-1 updates with partially cache-resident traffic.
            with self._region("panel_factorization", RegionClass.OTHER):
                self._emit(
                    KernelLaunch(
                        KernelKind.REDUCTION,
                        "pivot_search",
                        flops=float(rows * jb),
                        nbytes=8.0 * rows * jb,
                        fmt="fp64",
                    )
                )
                self._emit(
                    KernelLaunch(
                        KernelKind.GEMV,
                        "panel_rank1_updates",
                        flops=float(rows) * jb * jb,
                        nbytes=16.0 * rows * jb * jb * self.PANEL_TRAFFIC_FACTOR,
                        fmt="fp64",
                    )
                )
            with self._region("row_swaps", RegionClass.OTHER):
                self._emit(
                    KernelLaunch(
                        KernelKind.ELEMENTWISE,
                        "laswp_own",
                        nbytes=16.0 * jb * n,
                        fmt="fp64",
                    )
                )
            with self._region("panel_broadcast", RegionClass.OTHER):
                self._emit(
                    KernelLaunch(
                        KernelKind.COMM, "panel_bcast", nbytes=8.0 * rows * jb
                    )
                )
            if cols > 0:
                with self._region("dtrsm"):
                    self._emit(
                        KernelLaunch(
                            KernelKind.GEMM,
                            "dtrsm",
                            flops=float(cols) * jb * jb,
                            nbytes=8.0 * (jb * jb / 2 + 2.0 * jb * cols),
                            fmt="fp64",
                        )
                    )
                with self._region("dgemm"):
                    self._emit(
                        KernelLaunch.gemm(cols, cols, jb, fmt="fp64", name="dgemm")
                    )
        self.standard_post()

    @staticmethod
    def solve(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Numerically solve ``A x = b`` with the instrumented blocked LU
        (for validation in examples); requires an active context with
        numerics enabled."""
        from repro.blas import gesv

        return gesv(a, b)


class HPCG(Workload):
    """High Performance Conjugate Gradients.

    Everything is hand-written in the real benchmark (SpMV, symmetric
    Gauss-Seidel multigrid, fused vector ops), so nothing lands in the
    BLAS buckets — matching its all-"other" Fig. 3 bar.
    """

    def __init__(self, nrows: int = 4_000_000, iterations: int = 50) -> None:
        self.meta = WorkloadMeta(
            name="HPCG",
            suite="TOP500",
            domain="Math/Computer Science",
            description="Preconditioned CG on a 27-point stencil",
        )
        self.nrows = nrows
        self.iterations = iterations

    def run(self, *, scale: float = 1.0) -> None:
        iters = max(1, round(self.iterations * scale))
        nrows = self.nrows
        nnz = 27 * nrows
        self.standard_init(12.0 * nnz)
        spmv = KernelLaunch.spmv(nnz, nrows, name="spmv_own")
        mg = KernelLaunch.spmv(int(nnz * 1.5), nrows, name="symgs_sweep")
        vec = KernelLaunch.blas1(
            nrows, flops_per_element=2.0, streams=3, name="waxpby"
        )
        dot = KernelLaunch.blas1(
            nrows, flops_per_element=2.0, streams=2, name="dot_local"
        )
        allred = KernelLaunch(KernelKind.COMM, "allreduce", nbytes=8.0 * 64)
        for _ in range(iters):
            with self._region("cg_iteration", RegionClass.OTHER):
                self._emit(spmv)
                self._emit(mg)
                for _ in range(3):
                    self._emit(vec)
                self._emit(dot)
                self._emit(allred)
        self.standard_post()

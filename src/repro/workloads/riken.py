"""RIKEN Fiber miniapp suite (the Fugaku procurement set).

Fig. 3 highlights: NTChem 25.78 % GEMM + 0.45 % BLAS + 0.95 % LAPACK
(quantum-chemistry integral transformations are ``dgemm`` chains), and
mVMC with 16.41 % level-1/2 BLAS + 14.35 % (Sca)LAPACK (Pfaffian
updates) but no direct GEMM.  The other six are stencil/MD/genomics
codes with empty dense-linear-algebra bars.
"""

from __future__ import annotations

from repro.profiling.regions import RegionClass
from repro.sim.kernels import KernelKind, KernelLaunch
from repro.workloads import patterns
from repro.workloads.base import (
    KernelMixWorkload,
    Workload,
    WorkloadMeta,
)

__all__ = ["NTChem", "MVMC", "RIKEN_WORKLOADS"]

_M = 1.0e6


class NTChem(Workload):
    """NTChem-mini: RI-MP2 energy kernel.

    The four-index integral transformation is a chain of ``dgemm`` calls
    (the 25.78 % GEMM bar); Fock-like assembly and Schwarz screening are
    its own loops; a small eigen-solve (``dsyevd``) appears once per
    cycle.  Sizes CALIBRATED to Fig. 3.
    """

    def __init__(self, nbasis: int = 512, naux: int = 2048,
                 cycles: int = 8) -> None:
        self.meta = WorkloadMeta(
            name="NTChem",
            suite="RIKEN",
            domain="Chemistry",
            description="RI-MP2 correlation-energy kernel",
        )
        self.nbasis = nbasis
        self.naux = naux
        self.cycles = cycles

    def run(self, *, scale: float = 1.0) -> None:
        cycles = max(1, round(self.cycles * scale))
        nb, naux = self.nbasis, self.naux
        nocc = nb // 4
        transform = KernelLaunch.gemm(naux, nb * 4, nb, fmt="fp64",
                                      name="dgemm")
        screen = KernelLaunch(
            KernelKind.BRANCHY, "schwarz_screening",
            flops=30.0 * nb * nb * 4, nbytes=24.0 * nb * nb * 4,
        )
        # ERI evaluation dominates RI-MP2 (CALIBRATED: ~1.1e5 flop per
        # basis pair stands in for the screened quartet work).
        integrals = KernelLaunch(
            KernelKind.ELEMENTWISE, "eri_evaluation",
            flops=1.15e5 * nb * nb, nbytes=80.0 * nb * nb,
            fmt="fp64",
        )
        pair_energy = KernelLaunch.blas1(
            int(nocc * nocc * 120), flops_per_element=4.0, streams=2,
            name="ddot",
        )
        diag = KernelLaunch(
            KernelKind.GEMM, "dsyevd",
            flops=1.3 * float(nb) ** 3, nbytes=8.0 * 3 * nb * nb,
            fmt="fp64",
        )
        self.standard_init(8.0 * naux * nb)
        for _ in range(cycles):
            with self._region("integral_transform", RegionClass.OTHER):
                self._emit(integrals)
                self._emit(screen)
                with self._region("dgemm"):
                    self._emit(transform)
                    self._emit(transform)
            with self._region("ddot"):
                self._emit(pair_energy)
            with self._region("dsyevd"):
                self._emit(diag)
        self.standard_post()


class MVMC(Workload):
    """many-variable Variational Monte Carlo.

    Each MC sweep updates a Slater-determinant-like state through
    level-1/2 BLAS (``dger`` rank-1 updates, ``dgemv``) and periodically
    recomputes Pfaffian/inverse matrices via (Sca)LAPACK (``dgetrf``) —
    the two non-empty bars of its Fig. 3 entry.  Sizes CALIBRATED.
    """

    def __init__(self, nsites: int = 256, sweeps: int = 100) -> None:
        self.meta = WorkloadMeta(
            name="mVMC",
            suite="RIKEN",
            domain="Physics",
            description="Variational Monte Carlo for Hubbard models",
        )
        self.nsites = nsites
        self.sweeps = sweeps

    def run(self, *, scale: float = 1.0) -> None:
        sweeps = max(1, round(self.sweeps * scale))
        n = self.nsites
        gemv = KernelLaunch.gemv(n, n, fmt="fp64", name="dgemv")
        ger = KernelLaunch(
            KernelKind.GEMV, "dger",
            flops=2.0 * n * n, nbytes=8.0 * (2.0 * n * n + 2 * n),
            fmt="fp64",
        )
        pfaffian = KernelLaunch(
            KernelKind.GEMM, "dgetrf",
            flops=(2.0 / 3.0) * float(n) ** 3 * 4,
            nbytes=8.0 * n * n * 4,
            fmt="fp64",
        )
        local_energy = KernelLaunch(
            KernelKind.BRANCHY, "local_energy",
            flops=390.0 * n * n, nbytes=75.0 * n * n,
        )
        sampler = KernelLaunch(
            KernelKind.RNG, "metropolis_walk",
            flops=150.0 * n * n, nbytes=75.0 * n * n,
        )
        self.standard_init(8.0 * n * n * 16)
        for _ in range(sweeps):
            with self._region("mc_sweep", RegionClass.OTHER):
                self._emit(sampler)
                self._emit(local_energy)
                with self._region("dgemv"):
                    for _ in range(6):
                        self._emit(gemv)
                with self._region("dger"):
                    for _ in range(6):
                        self._emit(ger)
            with self._region("dgetrf"):
                self._emit(pfaffian)
        self.standard_post()


def _mix(name: str, domain: str, phases, iterations: int = 10) -> KernelMixWorkload:
    return KernelMixWorkload(
        WorkloadMeta(name=name, suite="RIKEN", domain=domain),
        phases,
        iterations=iterations,
    )


RIKEN_WORKLOADS: tuple[Workload, ...] = (
    _mix("FFB", "Engineering (Mechanics, CFD)",
         patterns.implicit_sparse(nnz=100 * _M, nrows=5 * _M)),
    _mix("FFVC", "Engineering (Mechanics, CFD)",
         patterns.stencil_grid(points=96 * _M, flops_per_point=50.0)),
    _mix("MODYLAS", "Physics and Chemistry", patterns.nbody_md(
        particles=4 * _M, neighbors=80.0)),
    MVMC(),
    _mix("NGSA", "Bioscience", patterns.genomics_alignment()),
    _mix("NICAM", "Geoscience/Earthscience", patterns.climate_model()),
    NTChem(),
    _mix("QCD", "Lattice QCD", patterns.lattice_gauge_other()),
)

"""The 77 HPC (proxy-)applications of Table V.

Each workload is a scaled-down mini-application that *executes* the
algorithmic pattern of the benchmark it stands for — blocked LU for HPL,
CG sweeps for HPCG/miniFE, spectral-element tensor contractions for
Nekbone, SU(3) link products for milc — emitting kernels through the
instrumented BLAS and profiler so that the Fig. 3 utilization fractions
*emerge from the algorithm structure and the device model* rather than
being tabulated.  GEMM-free benchmarks are expressed declaratively as
kernel mixes matching their dominant compute pattern.

Problem sizes and a small number of traffic constants are calibrated so
the simulated fractions land near the paper's measurements; every such
constant is marked CALIBRATED in its docstring and recorded in
EXPERIMENTS.md.
"""

from repro.workloads.base import (
    KernelMixWorkload,
    PhaseSpec,
    Workload,
    WorkloadMeta,
    profile_all_workloads,
    profile_workload,
)
from repro.workloads.registry import (
    all_workloads,
    get_workload,
    suite_names,
    workloads_by_suite,
    workload_names,
)

__all__ = [
    "Workload",
    "WorkloadMeta",
    "KernelMixWorkload",
    "PhaseSpec",
    "profile_workload",
    "profile_all_workloads",
    "get_workload",
    "all_workloads",
    "workload_names",
    "workloads_by_suite",
    "suite_names",
]

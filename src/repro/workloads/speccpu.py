"""SPEC CPU 2017 (train inputs, peak runs) — 24 benchmarks.

None of them show measurable GEMM in Fig. 3: SPEC CPU is deliberately
self-contained (no external BLAS), and the paper's Advisor + manual-
inspection pipeline found no hot GEMM-like regions that its inputs
exercise.  blender could not be measured at all (unresolvable runtime
errors) although its source contains GEMM calls — mirrored here by a
catalogue note.  '(R)' rows lack OpenMP parallelisation.
"""

from __future__ import annotations

from repro.workloads import patterns
from repro.workloads.base import KernelMixWorkload, Workload, WorkloadMeta

__all__ = ["SPEC_CPU_WORKLOADS"]

_M = 1.0e6


def _mix(name, domain, phases, *, openmp=True, notes="", iterations=10):
    return KernelMixWorkload(
        WorkloadMeta(name=name, suite="SPEC CPU", domain=domain,
                     openmp=openmp, notes=notes),
        phases,
        iterations=iterations,
    )


SPEC_CPU_WORKLOADS: tuple[Workload, ...] = (
    _mix("blender", "Math/Computer Science", patterns.media_processing(),
         openmp=False,
         notes="Fig. 3 data missing (runtime errors); source contains GEMM calls."),
    _mix("cam4", "Geoscience/Earthscience", patterns.climate_model(),
         openmp=False),
    _mix("namd", "Material Science/Engineering",
         patterns.nbody_md(particles=1 * _M, neighbors=90.0), openmp=False),
    _mix("parest", "Bioscience",
         patterns.implicit_sparse(nnz=60 * _M, nrows=3 * _M), openmp=False),
    _mix("povray", "Math/Computer Science", patterns.media_processing(),
         openmp=False),
    _mix("bwaves", "Physics", patterns.stencil_grid(points=80 * _M)),
    _mix("cactuBSSN", "Physics",
         patterns.stencil_grid(points=48 * _M, flops_per_point=120.0,
                               bytes_per_point=96.0)),
    _mix("deepsjeng", "Artificial Intelligence", patterns.integer_search()),
    _mix("exchange2", "Artificial Intelligence",
         patterns.integer_search(nodes=120 * _M)),
    _mix("fotonik3d", "Physics", patterns.wave_propagation(points=64 * _M)),
    _mix("gcc", "Math/Computer Science",
         patterns.integer_search(nodes=80 * _M)),
    _mix("imagick", "Math/Computer Science", patterns.media_processing()),
    _mix("lbm", "Engineering (Mechanics, CFD)",
         patterns.stencil_grid(points=100 * _M, flops_per_point=80.0,
                               bytes_per_point=150.0)),
    _mix("leela", "Artificial Intelligence",
         patterns.integer_search(nodes=150 * _M)),
    _mix("mcf", "Math/Computer Science",
         patterns.graph_analytics(edges=60 * _M)),
    _mix("nab", "Material Science/Engineering",
         patterns.nbody_md(particles=0.5 * _M, neighbors=120.0)),
    _mix("omnetpp", "Math/Computer Science",
         patterns.graph_analytics(edges=40 * _M)),
    _mix("perlbench", "Math/Computer Science",
         patterns.integer_search(nodes=100 * _M)),
    _mix("pop2", "Geoscience/Earthscience", patterns.climate_model(
        columns=4 * _M)),
    _mix("wrf", "Geoscience/Earthscience", patterns.climate_model(
        columns=6 * _M)),
    _mix("roms", "Geoscience/Earthscience", patterns.climate_model(
        columns=5 * _M)),
    _mix("x264", "Math/Computer Science",
         patterns.media_processing(pixels=700 * _M)),
    _mix("xalancbmk", "Math/Computer Science",
         patterns.graph_analytics(edges=50 * _M)),
    _mix("xz", "Math/Computer Science",
         patterns.integer_search(nodes=90 * _M)),
)

"""Reusable kernel-mix patterns for the GEMM-free benchmarks.

Most of the 77 benchmarks never touch dense linear algebra (that is the
paper's headline finding), so their Fig. 3 bars are entirely "other".
What still matters is that their kernel streams look like the right
*kind* of work — stencil sweeps for CFD, table-lookups for Monte-Carlo
transport, branchy integer code for the AI game engines — because the
cost-benefit analysis (Fig. 4) prices these workloads on device models.

Each factory returns a tuple of :class:`~repro.workloads.base.PhaseSpec`
with region names deliberately *not* matching BLAS routines: these codes
hand-roll their kernels, exactly why the paper needed Advisor + manual
inspection for the SPEC suites.
"""

from __future__ import annotations

from repro.sim.kernels import KernelKind, KernelLaunch
from repro.workloads.base import PhaseSpec

__all__ = [
    "stencil_grid",
    "implicit_sparse",
    "nbody_md",
    "monte_carlo_transport",
    "spectral_fft",
    "adaptive_mesh",
    "graph_analytics",
    "io_bound",
    "genomics_alignment",
    "integer_search",
    "media_processing",
    "climate_model",
    "wave_propagation",
    "lattice_gauge_other",
]

_M = 1.0e6
_G = 1.0e9


def stencil_grid(
    points: float = 64 * _M,
    *,
    flops_per_point: float = 40.0,
    bytes_per_point: float = 48.0,
    comm_bytes: float = 8 * _M,
    sweeps: int = 2,
) -> tuple[PhaseSpec, ...]:
    """Structured-grid PDE sweep (CFD / seismic / weather cores)."""
    sweep = KernelLaunch.stencil(
        points, flops_per_point=flops_per_point,
        bytes_per_point=bytes_per_point, name="grid_sweep",
    )
    halo = KernelLaunch(KernelKind.COMM, "halo_exchange", nbytes=comm_bytes)
    return (
        PhaseSpec("timestep", (sweep,) * sweeps + (halo,)),
    )


def implicit_sparse(
    nnz: float = 80 * _M,
    nrows: float = 4 * _M,
    *,
    vector_ops: int = 4,
    comm_bytes: float = 4 * _M,
) -> tuple[PhaseSpec, ...]:
    """Hand-written Krylov iteration: SpMV plus fused vector updates.

    Region names avoid BLAS vocabulary on purpose: codes like HPCG and
    AMG implement these loops themselves, so the paper's wrapper sees
    nothing (their Fig. 3 bars are all "other")."""
    spmv = KernelLaunch.spmv(int(nnz), int(nrows), name="sparse_matvec")
    vec = KernelLaunch.blas1(
        int(nrows), flops_per_element=2.0, streams=3, name="vector_update"
    )
    dotp = KernelLaunch.blas1(
        int(nrows), flops_per_element=2.0, streams=2, name="dot_local"
    )
    allred = KernelLaunch(KernelKind.COMM, "allreduce", nbytes=comm_bytes)
    return (
        PhaseSpec("cg_iteration", (spmv,) + (vec,) * vector_ops + (dotp, allred)),
    )


def nbody_md(
    particles: float = 2 * _M,
    *,
    neighbors: float = 60.0,
    flops_per_pair: float = 45.0,
) -> tuple[PhaseSpec, ...]:
    """Short-range molecular dynamics (CoMD, MODYLAS, namd, md, lammps)."""
    pairs = particles * neighbors
    force = KernelLaunch(
        KernelKind.ELEMENTWISE,
        "force_kernel",
        flops=flops_per_pair * pairs,
        nbytes=32.0 * pairs / 4,  # neighbour data largely cache-resident
        fmt="fp64",
    )
    neigh = KernelLaunch(
        KernelKind.BRANCHY,
        "neighbor_list",
        flops=4.0 * pairs / 10,
        nbytes=16.0 * particles,
    )
    integrate = KernelLaunch.blas1(
        int(particles * 3), flops_per_element=4.0, name="verlet_integrate"
    )
    return (PhaseSpec("md_step", (force, integrate)), PhaseSpec("rebuild", (neigh,)))


def monte_carlo_transport(
    lookups: float = 30 * _M, *, grid_bytes: float = 256 * _M
) -> tuple[PhaseSpec, ...]:
    """Cross-section lookup bound Monte-Carlo (XSBench)."""
    look = KernelLaunch(
        KernelKind.TABLE_LOOKUP,
        "xs_lookup",
        flops=20.0 * lookups,
        nbytes=48.0 * lookups,
    )
    rngk = KernelLaunch(KernelKind.RNG, "sample_path", flops=8.0 * lookups,
                        nbytes=8.0 * lookups)
    return (PhaseSpec("particle_histories", (look, rngk)),)


def spectral_fft(
    n_total: float = 64 * _M, *, transpose_bytes: float = 512 * _M
) -> tuple[PhaseSpec, ...]:
    """Distributed 3-D FFT (SWFFT, fotonik3d's spectral pieces)."""
    fft = KernelLaunch.fft(int(n_total), name="fft_1d_batch")
    transpose = KernelLaunch(
        KernelKind.COMM, "alltoall_transpose", nbytes=transpose_bytes
    )
    return (PhaseSpec("fft_forward", (fft, transpose, fft)),)


def adaptive_mesh(
    points: float = 32 * _M, *, refine_fraction: float = 0.1
) -> tuple[PhaseSpec, ...]:
    """Block-structured AMR (miniAMR, cactuBSSN-style)."""
    sweep = KernelLaunch.stencil(points, flops_per_point=30.0, name="block_sweep")
    refine = KernelLaunch(
        KernelKind.BRANCHY,
        "refine_coarsen",
        flops=6.0 * points * refine_fraction,
        nbytes=40.0 * points * refine_fraction,
    )
    balance = KernelLaunch(KernelKind.COMM, "load_balance", nbytes=32 * _M)
    return (PhaseSpec("amr_step", (sweep, sweep, refine, balance)),)


def graph_analytics(
    edges: float = 100 * _M,
) -> tuple[PhaseSpec, ...]:
    """Irregular graph traversal (miniTRI, mcf, xalancbmk-ish)."""
    traverse = KernelLaunch(
        KernelKind.TABLE_LOOKUP, "edge_traverse",
        flops=2.0 * edges, nbytes=16.0 * edges,
    )
    update = KernelLaunch(
        KernelKind.BRANCHY, "vertex_update", flops=1.0 * edges,
        nbytes=8.0 * edges,
    )
    return (PhaseSpec("graph_kernel", (traverse, update)),)


def io_bound(
    nbytes: float = 4 * _G, *, checkpoint_every: int = 1
) -> tuple[PhaseSpec, ...]:
    """I/O proxy (MACSio)."""
    pack = KernelLaunch(
        KernelKind.ELEMENTWISE, "pack_buffers", flops=0.5e9, nbytes=nbytes / 4
    )
    dump = KernelLaunch(KernelKind.IO, "dump_checkpoint", nbytes=nbytes)
    return (PhaseSpec("io_phase", (pack, dump), repeat=checkpoint_every),)


def genomics_alignment(
    cells: float = 40 * _G / 10,
) -> tuple[PhaseSpec, ...]:
    """Dynamic-programming sequence alignment (NGSA, smithwa, botsalgn)."""
    dp = KernelLaunch(
        KernelKind.BRANCHY, "dp_matrix_fill", flops=4.0 * cells,
        nbytes=2.0 * cells,
    )
    index = KernelLaunch(
        KernelKind.TABLE_LOOKUP, "index_lookup", flops=1.0 * cells / 4,
        nbytes=8.0 * cells / 4,
    )
    return (PhaseSpec("alignment", (dp, index)),)


def integer_search(
    nodes: float = 200 * _M,
) -> tuple[PhaseSpec, ...]:
    """Branchy integer tree search (deepsjeng, leela, exchange2, gcc, xz)."""
    search = KernelLaunch(
        KernelKind.BRANCHY, "tree_search", flops=6.0 * nodes,
        nbytes=12.0 * nodes,
    )
    evalk = KernelLaunch(
        KernelKind.TABLE_LOOKUP, "eval_tables", flops=2.0 * nodes,
        nbytes=8.0 * nodes,
    )
    return (PhaseSpec("search", (search, evalk)),)


def media_processing(
    pixels: float = 500 * _M,
) -> tuple[PhaseSpec, ...]:
    """Pixel pipelines (imagick, x264, povray, blender)."""
    filt = KernelLaunch(
        KernelKind.ELEMENTWISE, "pixel_filter", flops=30.0 * pixels,
        nbytes=8.0 * pixels, fmt="fp32",
    )
    decide = KernelLaunch(
        KernelKind.BRANCHY, "mode_decision", flops=4.0 * pixels,
        nbytes=4.0 * pixels,
    )
    return (PhaseSpec("frame", (filt, decide)),)


def climate_model(
    columns: float = 8 * _M, *, levels: int = 64
) -> tuple[PhaseSpec, ...]:
    """Atmosphere/ocean dynamics + physics columns (cam4, wrf, pop2,
    roms, NICAM, tera_tf)."""
    pts = columns * levels
    dyn = KernelLaunch.stencil(pts, flops_per_point=55.0, bytes_per_point=64.0,
                               name="dynamics_sweep")
    phys = KernelLaunch(
        KernelKind.BRANCHY, "physics_columns", flops=25.0 * pts,
        nbytes=16.0 * pts,
    )
    halo = KernelLaunch(KernelKind.COMM, "halo_exchange", nbytes=16 * _M)
    return (PhaseSpec("dynamics", (dyn, halo)), PhaseSpec("physics", (phys,)))


def wave_propagation(
    points: float = 96 * _M,
) -> tuple[PhaseSpec, ...]:
    """High-order seismic/EM wave kernels (SW4lite, GemsFDTD, fds4)."""
    sw = KernelLaunch.stencil(points, flops_per_point=65.0, bytes_per_point=72.0,
                              name="wave_update")
    bc = KernelLaunch(
        KernelKind.BRANCHY, "boundary_conditions", flops=2.0 * points / 20,
        nbytes=16.0 * points / 20,
    )
    return (PhaseSpec("wave_step", (sw, sw, bc)),)


def lattice_gauge_other(
    sites: float = 16 * _M,
) -> tuple[PhaseSpec, ...]:
    """Lattice QCD without instrumented GEMM (RIKEN's QCD proxy uses its
    own fused Wilson-Dirac stencil rather than matrix-multiply calls)."""
    dirac = KernelLaunch.stencil(
        sites, flops_per_point=1320.0, bytes_per_point=360.0,
        name="wilson_dirac",
    )
    lin = KernelLaunch.blas1(int(sites * 24), flops_per_element=2.0,
                             name="lattice_linalg")
    return (PhaseSpec("cg_solver", (dirac, dirac, lin)),)

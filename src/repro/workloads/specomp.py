"""SPEC OMP 2012 (train inputs, 48 threads) — 14 benchmarks.

Two of them carry the suite's only GEMM signal in Fig. 3: botsspar
(18.9 %, supernodal sparse LU whose dense-block updates the paper's
manual inspection flagged as GEMM) and bt331 (14.16 %, block-tridiagonal
NAS BT whose 5x5 ``matmul_sub`` loops were instrumented).
"""

from __future__ import annotations

from repro.profiling.regions import RegionClass
from repro.sim.kernels import KernelKind, KernelLaunch
from repro.workloads import patterns
from repro.workloads.base import KernelMixWorkload, Workload, WorkloadMeta

__all__ = ["Botsspar", "Bt331", "SPEC_OMP_WORKLOADS"]

_M = 1.0e6


class Botsspar(Workload):
    """BOTS SparseLU: task-parallel supernodal LU.

    The ``bmod`` task updates a dense block with a small matrix product —
    one of the 14 GEMM-like source locations the paper instrumented.
    Block count/size CALIBRATED to the 18.9 % Fig. 3 share.
    """

    def __init__(self, matrix_blocks: int = 50, block: int = 100,
                 iterations: int = 8) -> None:
        self.meta = WorkloadMeta(
            name="botsspar",
            suite="SPEC OMP",
            domain="Math/Computer Science",
            description="Task-parallel sparse LU (BOTS)",
        )
        self.matrix_blocks = matrix_blocks
        self.block = block
        self.iterations = iterations

    def run(self, *, scale: float = 1.0) -> None:
        iters = max(1, round(self.iterations * scale))
        nb, bs = self.matrix_blocks, self.block
        # ~15 % of block pairs are non-empty in the BOTS input.
        updates = int(0.15 * nb * nb)
        bmod = KernelLaunch(
            KernelKind.GEMM,
            "bmod_block_matmul",
            flops=2.0 * updates * float(bs) ** 3 / 110,
            nbytes=8.0 * updates * bs * bs / 15,
            fmt="fp64",
        )
        sched = KernelLaunch(
            KernelKind.BRANCHY, "task_scheduling",
            flops=5.0 * updates * bs, nbytes=24.0 * updates * bs,
        )
        fwd = KernelLaunch(
            KernelKind.GEMV, "fwd_bdiv_solves",
            flops=2.0 * nb * float(bs) ** 2,
            nbytes=16.0 * nb * bs * bs,
            fmt="fp64",
        )
        self.standard_init(8.0 * updates * bs * bs / 10)
        for _ in range(iters):
            with self._region("sparselu_sweep", RegionClass.OTHER):
                self._emit(sched)
                self._emit(fwd)
                with self._region("bmod_block_matmul"):
                    self._emit(bmod)
        self.standard_post()


class Bt331(Workload):
    """NAS BT: block-tridiagonal Navier-Stokes solver.

    Each ADI sweep inverts 5x5 blocks along pencils using the Fortran
    ``matmul_sub``/``binvcrhs`` routines the paper instrumented as GEMM
    (14.16 %); the RHS computation is a plain stencil.  CALIBRATED.
    """

    def __init__(self, grid: int = 162, iterations: int = 30) -> None:
        self.meta = WorkloadMeta(
            name="bt331",
            suite="SPEC OMP",
            domain="Engineering (Mechanics, CFD)",
            description="NAS BT block-tridiagonal solver",
        )
        self.grid = grid
        self.iterations = iterations

    def run(self, *, scale: float = 1.0) -> None:
        iters = max(1, round(self.iterations * scale))
        n3 = float(self.grid) ** 3
        block_ops = KernelLaunch(
            KernelKind.GEMM,
            "matmul_sub",
            flops=3.0 * n3 * 2.0 * 40,  # 5x5 block products along 3 sweeps
            nbytes=8.0 * n3 * 25 * 0.13,
            fmt="fp64",
        )
        rhs = KernelLaunch.stencil(
            n3, flops_per_point=220.0, bytes_per_point=180.0, name="compute_rhs"
        )
        solve = KernelLaunch(
            KernelKind.GEMV, "back_substitution",
            flops=60.0 * n3, nbytes=120.0 * n3,
            fmt="fp64",
        )
        self.standard_init(8.0 * n3 * 5)
        for _ in range(iters):
            with self._region("adi_sweep", RegionClass.OTHER):
                self._emit(rhs)
                with self._region("matmul_sub"):
                    self._emit(block_ops)
                self._emit(solve)
        self.standard_post()


def _mix(name, domain, phases, iterations: int = 10):
    return KernelMixWorkload(
        WorkloadMeta(name=name, suite="SPEC OMP", domain=domain),
        phases,
        iterations=iterations,
    )


SPEC_OMP_WORKLOADS: tuple[Workload, ...] = (
    _mix("applu331", "Engineering (Mechanics, CFD)",
         patterns.stencil_grid(points=64 * _M, flops_per_point=90.0)),
    _mix("botsalgn", "Bioscience", patterns.genomics_alignment()),
    Botsspar(),
    Bt331(),
    _mix("bwaves", "Engineering (Mechanics, CFD)",
         patterns.stencil_grid(points=80 * _M)),
    _mix("fma3d", "Physics", patterns.adaptive_mesh(points=40 * _M)),
    _mix("ilbdc", "Engineering (Mechanics, CFD)",
         patterns.stencil_grid(points=100 * _M, flops_per_point=70.0,
                               bytes_per_point=160.0)),
    _mix("imagick", "Math/Computer Science", patterns.media_processing()),
    _mix("kdtree", "Math/Computer Science",
         patterns.graph_analytics(edges=80 * _M)),
    _mix("md", "Material Science/Engineering",
         patterns.nbody_md(particles=2 * _M)),
    _mix("mgrid331", "Engineering (Mechanics, CFD)",
         patterns.stencil_grid(points=70 * _M, flops_per_point=35.0)),
    _mix("nab", "Chemistry",
         patterns.nbody_md(particles=0.6 * _M, neighbors=110.0)),
    _mix("smithwa", "Bioscience",
         patterns.genomics_alignment(cells=3.0e9)),
    _mix("swim", "Geoscience/Earthscience",
         patterns.stencil_grid(points=90 * _M, flops_per_point=30.0,
                               bytes_per_point=80.0)),
)

"""SPEC MPI 2007 (mtrain inputs, 48 ranks) — 18 benchmarks.

The lattice-QCD pair milc/dmilc carries the suite's biggest GEMM signal
(40.16 % / 35.57 %): their SU(3) link products are 3x3 complex matrix
multiplies the paper's inspection flagged.  socorro (plane-wave DFT)
adds 9.52 % GEMM + 0.99 % BLAS + 0.73 % LAPACK.
"""

from __future__ import annotations

from repro.profiling.regions import RegionClass
from repro.sim.kernels import KernelKind, KernelLaunch
from repro.workloads import patterns
from repro.workloads.base import KernelMixWorkload, Workload, WorkloadMeta

__all__ = ["Milc", "Socorro", "SPEC_MPI_WORKLOADS"]

_M = 1.0e6


class Milc(Workload):
    """MILC / su3imp: staggered-fermion lattice QCD.

    The conjugate-gradient Dirac solve multiplies SU(3) gauge links
    (3x3 complex ``mult_su3`` routines — instrumented as GEMM) against
    colour vectors; gauge-force and gather phases are plain lattice
    code.  ``gemm_share`` is CALIBRATED: 40.16 % for milc and 35.57 %
    for its double-precision twin dmilc (Fig. 3).
    """

    def __init__(self, name: str = "milc", sites: int = 16 * 16**3,
                 cg_iters: int = 40, gemm_weight: float = 1.0) -> None:
        self.meta = WorkloadMeta(
            name=name,
            suite="SPEC MPI",
            domain="Lattice QCD",
            description="Staggered lattice QCD CG solver",
        )
        self.sites = sites
        self.cg_iters = cg_iters
        self.gemm_weight = gemm_weight

    def run(self, *, scale: float = 1.0) -> None:
        iters = max(1, round(self.cg_iters * scale))
        sites = self.sites
        # 8 directions x (3x3)@(3x3 or 3x1) complex products per site:
        # 66-198 flop each; aggregated per CG iteration.
        su3 = KernelLaunch(
            KernelKind.GEMM,
            "mult_su3_matmul",
            flops=8 * 120.0 * sites * self.gemm_weight,
            nbytes=8 * 16.0 * sites,
            fmt="fp64",
        )
        gather = KernelLaunch(
            KernelKind.TABLE_LOOKUP, "site_gather",
            flops=2.0 * sites * 24, nbytes=30.0 * sites,
        )
        linalg = KernelLaunch.blas1(
            int(sites * 6), flops_per_element=2.0, streams=3,
            name="lattice_vec_ops",
        )
        halo = KernelLaunch(KernelKind.COMM, "halo_exchange",
                            nbytes=6.0 * sites)
        force = KernelLaunch(
            KernelKind.ELEMENTWISE, "gauge_force",
            flops=180.0 * sites, nbytes=70.0 * sites, fmt="fp64",
        )
        self.standard_init(8.0 * sites * 40)
        for _ in range(iters):
            with self._region("cg_dirac", RegionClass.OTHER):
                with self._region("mult_su3_matmul"):
                    self._emit(su3)
                self._emit(gather)
                self._emit(linalg)
                self._emit(halo)
            with self._region("gauge_update", RegionClass.OTHER):
                self._emit(force)
        self.standard_post()


class Socorro(Workload):
    """Plane-wave pseudopotential DFT.

    Subspace rotations call library ``dgemm`` (9.52 %), projector
    applications use ``dgemv`` (0.99 %), the subspace eigenproblem is a
    ``dsyev`` (0.73 %), and the FFT-based density/potential cycle
    dominates.  Sizes CALIBRATED.
    """

    def __init__(self, nbands: int = 256, npw: int = 12000,
                 scf_cycles: int = 12) -> None:
        self.meta = WorkloadMeta(
            name="socorro",
            suite="SPEC MPI",
            domain="Material Science/Engineering",
            description="Plane-wave DFT SCF cycle",
        )
        self.nbands = nbands
        self.npw = npw
        self.scf_cycles = scf_cycles

    def run(self, *, scale: float = 1.0) -> None:
        cycles = max(1, round(self.scf_cycles * scale))
        nb, npw = self.nbands, self.npw
        rotate = KernelLaunch.gemm(npw, nb, nb, fmt="fp64", name="dgemm")
        project = KernelLaunch.gemv(nb * 8, nb, fmt="fp64", name="dgemv")
        diag = KernelLaunch(
            KernelKind.GEMM, "dsyev",
            flops=9.0 * float(nb) ** 3, nbytes=8.0 * 3 * nb * nb,
            fmt="fp64",
        )
        ffts = KernelLaunch.fft(nb * npw * 2, name="wavefunction_fft")
        density = KernelLaunch(
            KernelKind.ELEMENTWISE, "density_update",
            flops=60.0 * nb * npw / 4, nbytes=24.0 * nb * npw / 4,
            fmt="fp64",
        )
        self.standard_init(16.0 * nb * npw)
        for _ in range(cycles):
            with self._region("scf_cycle", RegionClass.OTHER):
                for _ in range(12):
                    self._emit(ffts)
                    self._emit(density)
                with self._region("dgemv"):
                    for _ in range(8):
                        self._emit(project)
                with self._region("dgemm"):
                    self._emit(rotate)
                with self._region("dsyev"):
                    self._emit(diag)
        self.standard_post()


def _mix(name, domain, phases, iterations: int = 10):
    return KernelMixWorkload(
        WorkloadMeta(name=name, suite="SPEC MPI", domain=domain),
        phases,
        iterations=iterations,
    )


SPEC_MPI_WORKLOADS: tuple[Workload, ...] = (
    _mix("leslie3d", "Engineering (Mechanics, CFD)",
         patterns.stencil_grid(points=60 * _M, flops_per_point=85.0)),
    _mix("dleslie3d", "Engineering (Mechanics, CFD)",
         patterns.stencil_grid(points=60 * _M, flops_per_point=85.0)),
    Milc(name="dmilc", gemm_weight=0.80),
    _mix("fds4", "Engineering (Mechanics, CFD)",
         patterns.wave_propagation(points=48 * _M)),
    _mix("GAPgeofem", "Physics",
         patterns.implicit_sparse(nnz=90 * _M, nrows=4 * _M)),
    _mix("lammps", "Material Science/Engineering",
         patterns.nbody_md(particles=3 * _M)),
    _mix("GemsFDTD", "Physics", patterns.wave_propagation(points=80 * _M)),
    _mix("lGemsFDTD", "Physics", patterns.wave_propagation(points=120 * _M)),
    _mix("lu", "Engineering (Mechanics, CFD)",
         patterns.stencil_grid(points=48 * _M, flops_per_point=110.0)),
    _mix("wrf2", "Geoscience/Earthscience", patterns.climate_model()),
    _mix("lwrf2", "Geoscience/Earthscience",
         patterns.climate_model(columns=12 * _M)),
    _mix("pop2", "Geoscience/Earthscience",
         patterns.climate_model(columns=5 * _M)),
    _mix("RAxML", "Bioscience", patterns.genomics_alignment(cells=6.0e9)),
    Socorro(),
    _mix("tachyon", "Math/Computer Science", patterns.media_processing()),
    _mix("tera_tf", "Geoscience/Earthscience",
         patterns.stencil_grid(points=70 * _M, flops_per_point=60.0)),
    _mix("zeusmp2", "Engineering (Mechanics, CFD)",
         patterns.stencil_grid(points=64 * _M, flops_per_point=75.0)),
    Milc(name="milc", gemm_weight=1.0),
)

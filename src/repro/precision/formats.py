"""Floating-point format descriptors.

A :class:`FloatFormat` captures the three parameters that matter for
matrix-engine numerics: the significand precision ``p`` (number of
significand bits *including* the hidden leading bit), and the exponent
range ``[emin, emax]`` of the *normalised* representation, following the
IEEE-754 conventions (binary64 has ``p=53, emax=1023, emin=-1022``).

The standard formats used by the paper's hardware (Table I) are provided
as module-level singletons:

====== ====== ===== ===== =====================================
name   p      emax  emin  used by
====== ====== ===== ===== =====================================
fp16   11     15    -14   V100/A100 Tensor Core multiply input
bf16   8      127   -126  Intel AMX, TPU, Ascend 910
tf32   11     127   -126  A100 "TensorFloat-32" hybrid format
fp32   24     127   -126  Tensor Core accumulator, SGEMM
fp64   53     1023  -1022 DGEMM, A100 FP64 Tensor Core
====== ====== ===== ===== =====================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import FormatError

__all__ = ["FloatFormat", "FP16", "BF16", "TF32", "FP32", "FP64", "parse_format"]


@dataclass(frozen=True)
class FloatFormat:
    """A binary floating-point format.

    Parameters
    ----------
    name:
        Short identifier, e.g. ``"fp16"``.
    precision:
        Significand bits including the implicit leading one.  IEEE-754
        calls this ``p`` (binary32: 24, binary64: 53).
    emax:
        Largest exponent of a normal number (value range is
        ``[2^emin, (2 - 2^(1-p)) * 2^emax]``).
    emin:
        Smallest exponent of a normal number.
    supports_subnormals:
        Whether gradual underflow is modelled.  All formats shipped here
        support subnormals, matching IEEE-754 and the NVIDIA hardware.
    """

    name: str
    precision: int
    emax: int
    emin: int
    supports_subnormals: bool = field(default=True)

    def __post_init__(self) -> None:
        if self.precision < 1:
            raise FormatError(f"precision must be >= 1, got {self.precision}")
        if self.emax <= self.emin:
            raise FormatError(
                f"emax ({self.emax}) must exceed emin ({self.emin})"
            )

    # -- derived properties -------------------------------------------------

    @property
    def machine_epsilon(self) -> float:
        """Distance from 1.0 to the next larger representable number."""
        return 2.0 ** (1 - self.precision)

    @property
    def unit_roundoff(self) -> float:
        """Half of machine epsilon: the round-to-nearest error bound."""
        return 2.0 ** (-self.precision)

    @property
    def max_value(self) -> float:
        """Largest finite representable magnitude."""
        return (2.0 - 2.0 ** (1 - self.precision)) * 2.0**self.emax

    @property
    def min_normal(self) -> float:
        """Smallest positive normal magnitude."""
        return 2.0**self.emin

    @property
    def min_subnormal(self) -> float:
        """Smallest positive subnormal magnitude (== min_normal if the
        format does not support subnormals)."""
        if not self.supports_subnormals:
            return self.min_normal
        return 2.0 ** (self.emin - self.precision + 1)

    @property
    def mantissa_bits(self) -> int:
        """Explicitly stored significand bits (``p - 1``)."""
        return self.precision - 1

    # -- behaviour -----------------------------------------------------------

    def quantize(self, x: np.ndarray | float) -> np.ndarray:
        """Round ``x`` (element-wise) to the nearest value representable in
        this format, ties to even.  See :func:`repro.precision.rounding.quantize`.
        """
        from repro.precision.rounding import quantize

        return quantize(x, self)

    def bits_total(self) -> int | None:
        """Total storage bits for the *standard* formats; ``None`` for
        custom formats without a defined interchange encoding."""
        known = {
            ("fp16", 11, 15): 16,
            ("bf16", 8, 127): 16,
            ("tf32", 11, 127): 19,
            ("fp32", 24, 127): 32,
            ("fp64", 53, 1023): 64,
        }
        return known.get((self.name, self.precision, self.emax))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


FP16 = FloatFormat("fp16", precision=11, emax=15, emin=-14)
BF16 = FloatFormat("bf16", precision=8, emax=127, emin=-126)
TF32 = FloatFormat("tf32", precision=11, emax=127, emin=-126)
FP32 = FloatFormat("fp32", precision=24, emax=127, emin=-126)
FP64 = FloatFormat("fp64", precision=53, emax=1023, emin=-1022)

_BY_NAME = {f.name: f for f in (FP16, BF16, TF32, FP32, FP64)}


def parse_format(spec: str | FloatFormat) -> FloatFormat:
    """Resolve a format name (``"fp16"``, ``"bf16"``, …) or pass through a
    :class:`FloatFormat` instance.

    Raises
    ------
    FormatError
        If the name is not one of the registered standard formats.
    """
    if isinstance(spec, FloatFormat):
        return spec
    try:
        return _BY_NAME[spec.lower()]
    except KeyError:
        raise FormatError(
            f"unknown format {spec!r}; known: {sorted(_BY_NAME)}"
        ) from None

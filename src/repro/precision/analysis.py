"""Error metrics for comparing reduced-precision results against references.

Used by the Ozaki-scheme tests and the Table VIII accuracy verification to
state claims like "DGEMM-equivalent accuracy" precisely: the DGEMM-TC
result must match a binary64 GEMM to within a few ulp of binary64, whereas
a plain fp16-multiply engine is off by orders of magnitude for wide-range
inputs.
"""

from __future__ import annotations

import numpy as np

from repro.precision.formats import FP64, FloatFormat
from repro.precision.rounding import ulp

__all__ = [
    "max_relative_error",
    "relative_frobenius_error",
    "max_ulp_error",
]


def max_relative_error(
    approx: np.ndarray, exact: np.ndarray, *, floor: float = 0.0
) -> float:
    """Largest element-wise relative error ``|approx - exact| / |exact|``.

    Elements where ``|exact| <= floor`` are compared absolutely against
    ``floor`` instead (avoiding division blow-up at exact zeros); with the
    default ``floor=0`` such elements contribute 0 if they match exactly
    and ``inf`` otherwise.
    """
    approx = np.asarray(approx, dtype=np.float64)
    exact = np.asarray(exact, dtype=np.float64)
    diff = np.abs(approx - exact)
    denom = np.abs(exact)
    small = denom <= floor
    out = np.zeros_like(diff)
    np.divide(diff, denom, out=out, where=~small)
    if floor > 0.0:
        out[small] = diff[small] / floor
    else:
        out[small] = np.where(diff[small] == 0.0, 0.0, np.inf)
    return float(out.max()) if out.size else 0.0


def relative_frobenius_error(approx: np.ndarray, exact: np.ndarray) -> float:
    """``||approx - exact||_F / ||exact||_F`` — the norm-wise error used in
    the GEMM-emulation literature (Mukunoki et al., ISC 2020)."""
    approx = np.asarray(approx, dtype=np.float64)
    exact = np.asarray(exact, dtype=np.float64)
    denom = float(np.linalg.norm(exact))
    if denom == 0.0:
        return float(np.linalg.norm(approx))
    return float(np.linalg.norm(approx - exact)) / denom


def max_ulp_error(
    approx: np.ndarray, exact: np.ndarray, fmt: FloatFormat = FP64
) -> float:
    """Largest element-wise error measured in ulps of ``fmt`` at the exact
    value.  A correctly-rounded result scores <= 0.5."""
    approx = np.asarray(approx, dtype=np.float64)
    exact = np.asarray(exact, dtype=np.float64)
    spacing = ulp(exact, fmt)
    err = np.abs(approx - exact) / spacing
    return float(err.max()) if err.size else 0.0

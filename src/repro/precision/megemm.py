"""Matrix-engine GEMM semantics: multiply narrow, accumulate wide.

The matrix engines surveyed in the paper (Sec. II-B) are *hybrid*: the
V100 Tensor Core multiplies IEEE binary16 operands and accumulates into
binary32; IBM Power10's MMA multiplies fp16/fp32 and accumulates into
fp32/fp64.  :class:`MatrixEngineGemm` models exactly that contract:

1. operands are rounded (to nearest, ties to even) onto the multiply
   format's grid — this is the conversion the hardware performs when
   loading fragments;
2. element products and the running dot-product sums are carried in the
   accumulate format.

Emulation strategy: products of two ``p``-bit significands need ``2p``
bits; when the accumulate format is binary32 or binary64 we can run the
matrix product natively in ``numpy.float32`` / ``numpy.float64``, which
*is* arithmetic in the accumulate format.  This reproduces Tensor Core
behaviour bit-exactly whenever every partial sum is exactly representable
in the accumulator — the property the Ozaki scheme (Sec. IV-B) is built
on — and to within summation-order effects otherwise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import FormatError
from repro.precision.formats import FP16, FP32, FloatFormat, parse_format
from repro.precision.rounding import quantize

__all__ = ["MatrixEngineGemm", "me_gemm", "exact_dot_bits"]


def exact_dot_bits(k: int, accumulate: FloatFormat) -> int:
    """Largest significand width ``beta`` (bits) such that a length-``k``
    dot product of ``beta``-bit operands is *exact* in the accumulate
    format.

    A product of two ``beta``-bit integers needs ``2*beta`` bits; summing
    ``k`` of them adds ``ceil(log2(k))`` carry bits.  Exactness therefore
    requires ``2*beta + ceil(log2(k)) <= p_acc``.  This is the bound that
    determines the Ozaki scheme's slice width (Mukunoki et al., ISC 2020).
    """
    if k < 1:
        raise FormatError(f"dot length must be positive, got {k}")
    carry = math.ceil(math.log2(k)) if k > 1 else 0
    return max(0, (accumulate.precision - carry) // 2)


@dataclass(frozen=True)
class MatrixEngineGemm:
    """Callable implementing ``C = A @ B`` with matrix-engine numerics.

    Parameters
    ----------
    multiply:
        Format the operands are rounded to before multiplication
        (e.g. :data:`~repro.precision.formats.FP16` for V100 TCs).
    accumulate:
        Format of the products and running sums.  Must be ``fp32`` or
        ``fp64`` (the only accumulator widths in shipping hardware,
        cf. Table I).
    """

    multiply: FloatFormat
    accumulate: FloatFormat

    def __post_init__(self) -> None:
        if self.accumulate.name not in ("fp32", "fp64"):
            raise FormatError(
                "accumulate format must be fp32 or fp64, got "
                f"{self.accumulate.name}"
            )
        if self.accumulate.precision < self.multiply.precision:
            raise FormatError(
                "accumulator narrower than multiplier: "
                f"{self.accumulate.name} < {self.multiply.name}"
            )

    @property
    def _acc_dtype(self) -> type:
        return np.float32 if self.accumulate.name == "fp32" else np.float64

    def round_operand(self, x: np.ndarray) -> np.ndarray:
        """Round an operand onto the multiply format grid (as the hardware
        does on fragment load), returned as float64 holding exact values."""
        return quantize(x, self.multiply)

    def __call__(
        self,
        a: np.ndarray,
        b: np.ndarray,
        *,
        pre_rounded: bool = False,
    ) -> np.ndarray:
        """Compute ``A @ B`` under this engine's numerics.

        Parameters
        ----------
        a, b:
            2-D operands (any float dtype).  Shapes must be conformable.
        pre_rounded:
            Skip the operand rounding step when the caller guarantees the
            inputs already lie on the multiply format's grid (the Ozaki
            splitter constructs such slices).

        Returns
        -------
        numpy.ndarray
            ``float64`` result whose values are exactly those the engine
            would produce (the accumulate-format values embed in fp64).
        """
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise FormatError(
                f"non-conformable GEMM operands: {a.shape} @ {b.shape}"
            )
        if not pre_rounded:
            a = self.round_operand(a)
            b = self.round_operand(b)
        dt = self._acc_dtype
        c = np.matmul(a.astype(dt), b.astype(dt))
        return c.astype(np.float64)

    def exact_slice_bits(self, k: int) -> int:
        """Slice significand width usable for error-free products of
        length-``k`` dot products on this engine (bounded additionally by
        the multiply format's own precision)."""
        return min(self.multiply.precision, exact_dot_bits(k, self.accumulate))


def me_gemm(
    a: np.ndarray,
    b: np.ndarray,
    *,
    multiply: str | FloatFormat = FP16,
    accumulate: str | FloatFormat = FP32,
) -> np.ndarray:
    """Convenience wrapper: one-shot matrix-engine GEMM.

    ``me_gemm(a, b)`` reproduces a V100 Tensor Core HGEMM with fp32
    accumulation; pass ``multiply="bf16"`` for an AMX/TPU-style engine or
    ``accumulate="fp64"`` for Power10/A100 double-precision engines.
    """
    eng = MatrixEngineGemm(parse_format(multiply), parse_format(accumulate))
    return eng(a, b)

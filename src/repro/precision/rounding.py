"""Vectorized round-to-nearest-even quantization onto a :class:`FloatFormat`.

The implementation works entirely in IEEE-754 binary64 and exploits that
every format modelled here (p <= 53, |emax| <= 1023) embeds exactly into
binary64: a binary64 value is representable in the target format iff its
significand fits in ``p`` bits and its exponent lies in range.  Rounding is
performed by rescaling each element so that the target grid spacing becomes
1.0 and applying :func:`numpy.round` (which rounds half to even), then
rescaling back — the classic exact-scaling construction, fully vectorized.

Overflow follows the IEEE round-to-nearest rule: magnitudes at or above
``2^emax * (2 - 2^-p)`` become infinite, anything between the largest finite
value and that threshold rounds down to the largest finite value.
"""

from __future__ import annotations

import numpy as np

from repro.precision.formats import FloatFormat

__all__ = ["quantize", "representable", "ulp"]


def _grid_exponents(x: np.ndarray, fmt: FloatFormat) -> np.ndarray:
    """Exponent ``g`` such that the representable grid around each ``x`` is
    ``{k * 2^g : k integer}``.

    For a normal target value with IEEE exponent ``e`` the grid is
    ``2^(e - p + 1)``; inside the subnormal range the grid is the fixed
    ``2^(emin - p + 1)``.
    """
    _, e = np.frexp(x)
    ieee_e = e - 1  # frexp yields x = m * 2^e with 0.5 <= |m| < 1
    if fmt.supports_subnormals:
        floor_e = fmt.emin
    else:
        floor_e = fmt.emin
    return np.maximum(ieee_e, floor_e) - (fmt.precision - 1)


def quantize(x: np.ndarray | float, fmt: FloatFormat) -> np.ndarray:
    """Round ``x`` element-wise to the nearest ``fmt``-representable value.

    Ties round to even, matching IEEE-754 default rounding and NVIDIA
    Tensor Core input conversion.  NaN propagates; signed zeros and
    infinities are preserved; overflow saturates to ±inf per the IEEE
    threshold rule.

    Returns a new ``float64`` array (or 0-d array for scalar input) whose
    values all lie exactly on the target format's grid.
    """
    x = np.asarray(x, dtype=np.float64)
    y = x.copy()
    finite = np.isfinite(x) & (x != 0.0)
    if finite.any():
        xf = x[finite]
        g = _grid_exponents(xf, fmt)
        with np.errstate(over="ignore"):
            # ldexp may overflow to inf when a value at the top of the fp64
            # range rounds up a binade — exactly IEEE overflow behaviour.
            scaled = np.ldexp(xf, -g)
            rounded = np.round(scaled)  # half-to-even
            yf = np.ldexp(rounded, g)
        y[finite] = yf

    # Overflow handling (round-to-nearest threshold).
    thresh = (2.0 - 2.0 ** (-fmt.precision)) * 2.0**fmt.emax
    over = np.isfinite(x) & (np.abs(x) >= thresh)
    y[over] = np.sign(x[over]) * np.inf
    big = np.isfinite(y) & (np.abs(y) > fmt.max_value)
    y[big] = np.sign(y[big]) * fmt.max_value

    if not fmt.supports_subnormals:
        # Flush-to-zero semantics below the normal range, with round to
        # nearest between 0 and min_normal.
        small = np.isfinite(y) & (y != 0.0) & (np.abs(y) < fmt.min_normal)
        half = fmt.min_normal / 2.0
        flush = small & (np.abs(x) < half)
        y[flush] = np.sign(x[flush]) * 0.0
        keep = small & (np.abs(x) >= half)
        y[keep] = np.sign(x[keep]) * fmt.min_normal
    return y


def representable(x: np.ndarray | float, fmt: FloatFormat) -> np.ndarray:
    """Boolean mask: is each element exactly representable in ``fmt``?

    NaN and ±inf count as representable (every format here has them).
    """
    x = np.asarray(x, dtype=np.float64)
    q = quantize(x, fmt)
    return ~np.isfinite(x) | (q == x)


def ulp(x: np.ndarray | float, fmt: FloatFormat) -> np.ndarray:
    """Unit in the last place of ``fmt`` at each ``|x|``.

    Defined as the grid spacing of the format at the magnitude of ``x``;
    for ``x == 0`` this is the subnormal spacing ``2^(emin - p + 1)``.
    """
    x = np.asarray(x, dtype=np.float64)
    out = np.full(x.shape, 2.0 ** (fmt.emin - fmt.precision + 1))
    finite = np.isfinite(x) & (x != 0.0)
    if finite.any():
        g = _grid_exponents(x[finite], fmt)
        out[finite] = np.ldexp(np.ones(g.shape), g)
    return out

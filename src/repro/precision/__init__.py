"""Software-defined floating-point formats and matrix-engine numerics.

This subpackage is the numerical foundation of the reproduction: it models
the reduced-precision formats that matrix engines operate on (IEEE-754
binary16, bfloat16, NVIDIA's TF32, binary32, binary64), provides exact
round-to-nearest-even quantization onto those formats, and implements the
semantics of a *hybrid* matrix engine — one that multiplies in a narrow
format and accumulates in a wider one (Sec. II-B of the paper).
"""

from repro.precision.formats import (
    BF16,
    FP16,
    FP32,
    FP64,
    TF32,
    FloatFormat,
    parse_format,
)
from repro.precision.rounding import quantize, representable, ulp
from repro.precision.megemm import MatrixEngineGemm, me_gemm
from repro.precision.analysis import (
    max_relative_error,
    max_ulp_error,
    relative_frobenius_error,
)
from repro.precision.refinement import (
    RefinementResult,
    lu_iterative_refinement,
)
from repro.precision.markidis import MarkidisResult, markidis_gemm

__all__ = [
    "FloatFormat",
    "FP16",
    "BF16",
    "TF32",
    "FP32",
    "FP64",
    "parse_format",
    "quantize",
    "representable",
    "ulp",
    "MatrixEngineGemm",
    "me_gemm",
    "max_relative_error",
    "max_ulp_error",
    "relative_frobenius_error",
    "RefinementResult",
    "lu_iterative_refinement",
    "MarkidisResult",
    "markidis_gemm",
]

"""Markidis-style precision-refined Tensor-Core GEMM (related work [57]).

Markidis et al. (IPDPSW 2018) proposed recovering (near-)SGEMM accuracy
from fp16 Tensor Cores with a *single* residual split per operand:

    A = A16 + dA,  B = B16 + dB   (A16 = fl16(A), dA = fl16(A - A16))
    C = A16 B16 + A16 dB + dA B16        (4th term dA dB is negligible)

— three engine products instead of the Ozaki scheme's input-dependent
many.  The paper positions this as the lightweight end of the emulation
spectrum: cheaper, but only ~binary32 accuracy for well-scaled inputs
and no help for wide exponent ranges (fp16's range still binds).  It is
implemented here as the natural baseline the Ozaki scheme is compared
against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import OzakiError
from repro.precision.formats import FP16, FP32
from repro.precision.megemm import MatrixEngineGemm
from repro.precision.rounding import quantize

__all__ = ["MarkidisResult", "markidis_gemm"]

_DEFAULT_ENGINE = MatrixEngineGemm(FP16, FP32)


@dataclass(frozen=True)
class MarkidisResult:
    """Result + cost of one precision-refined GEMM."""

    c: np.ndarray
    num_products: int  # always 3 (the refinement terms)


def markidis_gemm(
    a: np.ndarray,
    b: np.ndarray,
    *,
    engine: MatrixEngineGemm = _DEFAULT_ENGINE,
) -> MarkidisResult:
    """One-step precision-refined GEMM on a hybrid matrix engine.

    Inputs must be finite and within the multiply format's range (the
    method has no scaling machinery — its documented limitation vs the
    Ozaki scheme).
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise OzakiError(f"non-conformable operands: {a.shape} @ {b.shape}")
    if not (np.isfinite(a).all() and np.isfinite(b).all()):
        raise OzakiError("markidis_gemm requires finite input")
    fmt = engine.multiply
    a16 = quantize(a, fmt)
    b16 = quantize(b, fmt)
    if not (np.isfinite(a16).all() and np.isfinite(b16).all()):
        raise OzakiError(
            f"input exceeds the {fmt.name} range; use ozaki_gemm (which "
            "scales per row/column) for wide-range data"
        )
    da = quantize(a - a16, fmt)
    db = quantize(b - b16, fmt)
    c = (
        engine(a16, b16, pre_rounded=True)
        + engine(a16, db, pre_rounded=True)
        + engine(da, b16, pre_rounded=True)
    )
    return MarkidisResult(c=c, num_products=3)

"""Mixed-precision iterative refinement (the Sec. V-A3 opportunity).

The survey the paper points to (Abdelfattah et al., "A Survey of
Numerical Methods Utilizing Mixed Precision Arithmetic") centres on one
workhorse: factorise once in *low* precision (cheap — exactly what a
matrix engine accelerates), then recover full fp64 accuracy with a few
fp64 residual corrections.  This module implements real LU-based
iterative refinement with the factorisation carried out in any modelled
format, demonstrating that an fp16-class engine can serve
double-precision solves — the argument for "lower/mixed precision in
scientific computing".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg

from repro.errors import FormatError
from repro.precision.formats import FloatFormat, parse_format
from repro.precision.rounding import quantize

__all__ = ["RefinementResult", "lu_iterative_refinement"]


@dataclass(frozen=True)
class RefinementResult:
    """Outcome of one mixed-precision solve."""

    x: np.ndarray
    iterations: int
    converged: bool
    residual_history: tuple[float, ...]  # relative residuals per iteration
    factorization_format: str

    @property
    def final_residual(self) -> float:
        return self.residual_history[-1] if self.residual_history else np.inf


def lu_iterative_refinement(
    a: np.ndarray,
    b: np.ndarray,
    *,
    factorization: str | FloatFormat = "fp16",
    tol: float = 1e-12,
    max_iterations: int = 60,
) -> RefinementResult:
    """Solve ``A x = b`` with a low-precision LU and fp64 refinement.

    The factorisation is computed on a copy of ``A`` rounded to the
    ``factorization`` format, with every intermediate re-rounded onto
    that format's grid (simulating arithmetic performed entirely in low
    precision); triangular solves reuse the low-precision factors while
    residuals and corrections are fp64.  Converges whenever the format's
    unit roundoff times kappa(A) is comfortably below one — the standard
    IR condition; the scaled equilibration makes fp16's narrow exponent
    range usable.

    Returns the solution with its convergence history; ``converged`` is
    False when ``max_iterations`` pass without reaching ``tol`` (e.g.
    for ill-conditioned systems, the documented limitation).
    """
    fmt = parse_format(factorization)
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise FormatError(f"need a square system, got {a.shape}")
    if b.shape != (a.shape[0],):
        raise FormatError(f"rhs shape {b.shape} does not match {a.shape}")
    n = a.shape[0]

    # Two-sided power-of-two equilibration keeps entries inside the
    # low-precision exponent range (essential for fp16's +-2^15).
    row_scale = _pow2_scale(np.abs(a).max(axis=1))
    col_scale = _pow2_scale(np.abs(a).max(axis=0) / row_scale.mean())
    a_scaled = a / row_scale[:, None] / col_scale[None, :]

    a_low = quantize(a_scaled, fmt)
    if not np.isfinite(a_low).all():
        raise FormatError(
            f"matrix not representable in {fmt.name} even after scaling"
        )
    lu, piv = scipy.linalg.lu_factor(a_low)
    # Re-round the factors onto the format grid: the factorisation
    # itself is performed in low precision, not just its input.
    lu = quantize(lu, fmt)

    def low_precision_solve(rhs: np.ndarray) -> np.ndarray:
        y = scipy.linalg.lu_solve((lu, piv), rhs / row_scale)
        return y / col_scale

    norm_b = float(np.linalg.norm(b))
    if norm_b == 0.0:
        return RefinementResult(
            x=np.zeros(n), iterations=0, converged=True,
            residual_history=(0.0,), factorization_format=fmt.name,
        )

    x = low_precision_solve(b)
    history: list[float] = []
    converged = False
    for it in range(1, max_iterations + 1):
        r = b - a @ x  # fp64 residual — the high-precision half of IR
        rel = float(np.linalg.norm(r)) / norm_b
        history.append(rel)
        if rel <= tol:
            converged = True
            break
        x = x + low_precision_solve(r)
    return RefinementResult(
        x=x,
        iterations=len(history),
        converged=converged,
        residual_history=tuple(history),
        factorization_format=fmt.name,
    )


def _pow2_scale(v: np.ndarray) -> np.ndarray:
    """Nearest power-of-two scaling factors (exact to apply/remove)."""
    v = np.where(v <= 0.0, 1.0, v)
    _, e = np.frexp(v)
    return np.ldexp(np.ones_like(v), e - 1)

"""Price the durable store's crash-safety tax: < 10 % of a run.

Every artefact flush now pays for a SHA-256 of the payload, a temp
file, two fsyncs (file, then parent directory), an atomic rename, and
a handful of fsync'd journal records.  These benchmarks measure that
tax two ways — the raw per-file cost against a volatile ``write()``
baseline, and the end-to-end cost of a full durable export amortised
against the pipeline run it protects — and assert the amortised figure
stays under the PR's 10 % budget.  Durability is bought per artefact
flush, not per simulated FLOP, so the bill shrinks as the science
grows.
"""

import time

from repro.harness.cache import SUBSTRATE_CACHE
from repro.harness.export import _artifact_payloads, export_all
from repro.harness.pipeline import run_pipeline
from repro.harness.store import durable_write

OVERHEAD_BUDGET = 0.10


def _volatile_export(results, outdir) -> None:
    """The pre-durability writer: buffered writes, no checksums, no
    journal, no fsync — what a crash can shred."""
    for name, result in results.items():
        for filename, data in _artifact_payloads(name, result).items():
            with open(outdir / filename, "wb") as fh:
                fh.write(data)


def bench_durable_write_raw(benchmark, tmp_path):
    """One durable flush of a representative (64 KiB) payload."""
    payload = b"x" * 65536
    target = tmp_path / "artefact.json"

    benchmark(lambda: durable_write(target, payload))


def bench_export_amortised_overhead(benchmark, tmp_path):
    """A full durable export costs < 10 % of the run it makes safe."""
    SUBSTRATE_CACHE.clear()
    t0 = time.perf_counter()
    run = run_pipeline()
    pipeline_s = time.perf_counter() - t0
    assert len(run.results) == 13

    durable_dir = tmp_path / "durable"
    volatile_dir = tmp_path / "volatile"
    durable_dir.mkdir()
    volatile_dir.mkdir()

    t0 = time.perf_counter()
    written = export_all(run.results, durable_dir, run_manifest=run.manifest)
    durable_s = time.perf_counter() - t0
    assert len(written) >= 13

    t0 = time.perf_counter()
    _volatile_export(run.results, volatile_dir)
    volatile_s = time.perf_counter() - t0

    # The tax is what durability adds beyond volatile writes, priced
    # against the whole run the manifest certifies.
    tax = max(0.0, durable_s - volatile_s) / (pipeline_s + durable_s)
    assert tax < OVERHEAD_BUDGET, (
        f"durable export adds {tax:.2%} over a volatile export "
        f"(durable {durable_s * 1e3:.1f} ms, volatile "
        f"{volatile_s * 1e3:.1f} ms, pipeline {pipeline_s * 1e3:.0f} ms)"
    )

    benchmark(lambda: export_all(
        run.results, durable_dir, run_manifest=run.manifest
    ))
    SUBSTRATE_CACHE.clear()

"""Regenerate the Sec. III-A K-computer symbol-table analysis."""

import pytest

from repro.harness import section_iii_a


def bench_section_iii_a(benchmark):
    s = benchmark(section_iii_a)
    a = s["attribution"]
    assert a.coverage == pytest.approx(0.96, abs=0.015)
    assert a.gemm_fraction == pytest.approx(0.534, abs=0.02)
    assert a.gemm_node_hours == pytest.approx(277_258_182, rel=0.05)
    assert a.best_case_halving

"""Regenerate Table I (ME architecture survey + compute densities)."""

import pytest

from repro.harness import table_i


def bench_table_i(benchmark):
    t = benchmark(table_i)
    rows = {r["system"]: r for r in t["rows"]}
    # The paper's headline density facts must hold.
    assert rows["NVIDIA Tesla V100"]["density_f16"] == pytest.approx(153.4, abs=0.1)
    assert rows["NVIDIA Tesla A100"]["density_f16"] == pytest.approx(377.7, abs=0.2)
    assert rows["Huawei Ascend 910"]["density_f16"] == pytest.approx(208.5, abs=0.2)
    assert rows["IBM Power10"]["density_f16"] == pytest.approx(27.2, abs=0.1)
    # Power10 reaches only ~18 % of the V100's density (Sec. II-B).
    ratio = rows["IBM Power10"]["density_f16"] / rows["NVIDIA Tesla V100"]["density_f16"]
    assert ratio == pytest.approx(0.18, abs=0.01)

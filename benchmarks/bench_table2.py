"""Regenerate Table II (scalar vs AVX2 GEMM energy on the Xeon)."""

import pytest

from repro.harness import table_ii

PAPER = {
    ("DGEMM", "(none)"): (34.22, 1.23),
    ("DGEMM", "AVX2"): (12.49, 2.92),
    ("SGEMM", "(none)"): (16.79, 2.65),
    ("SGEMM", "AVX2"): (6.36, 5.92),
}


def bench_table_ii(benchmark):
    t = benchmark(table_ii)
    rows = {(r["precision"], r["vector_extension"]): r for r in t["rows"]}
    for key, (walltime, eff) in PAPER.items():
        assert rows[key]["walltime_s"] == pytest.approx(walltime, rel=0.06)
        assert rows[key]["gflop_per_joule"] == pytest.approx(eff, rel=0.06)

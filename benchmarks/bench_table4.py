"""Regenerate Table IV (FP32 -> mixed speedups + TC occupancy)."""

import pytest

from repro.harness import table_iv


def bench_table_iv(benchmark, paper_table_iv):
    t = benchmark(table_iv)
    rows = {r["benchmark"]: r for r in t["rows"]}
    assert len(rows) == 12
    # Speedups within a band of the paper (except the internally
    # inconsistent GEMM row; see EXPERIMENTS.md).
    for name, (speedup, *_rest) in paper_table_iv.items():
        if name == "GEMM":
            assert rows[name]["speedup"] > 3.0
            continue
        assert rows[name]["speedup"] == pytest.approx(
            speedup, rel=0.30, abs=0.25
        ), name
    # The qualitative claims of Sec. III-C3.
    assert rows["BERT"]["speedup"] > 2.5  # transformers ~4x class
    assert 1.5 < rows["Resnet50"]["speedup"] < 2.5  # convnets ~2x class
    assert rows["NCF"]["speedup"] < 1.0
    assert rows["Cosmoflow"]["tc_pct"] < 0.5


def bench_table_iv_single_model(benchmark):
    from repro.dl import profile_mixed_precision

    rep = benchmark(profile_mixed_precision, "Resnet50")
    assert rep.speedup == pytest.approx(1.97, abs=0.4)

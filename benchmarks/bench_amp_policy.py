"""Ablation: mixed-precision policy knobs (Table IV sensitivity).

DESIGN.md design choice: cuDNN's TC-kernel coverage (tc_fraction) and
the pointwise traffic ratio drive the convnet rows of Table IV.  The
bench sweeps the policy and verifies the expected monotone responses.
"""

import dataclasses

import pytest

from repro.dl import PrecisionPolicy, build_model, train_step
from repro.dl.layers import Conv2D
from repro.dl.lowering import lower_training_step
from repro.hardware import get_device
from repro.sim.engine import SimulatedDevice


def _step_time(model, policy):
    device = get_device("v100")
    sim = SimulatedDevice(device)
    for k in lower_training_step(model, device, policy):
        sim.launch(k)
    return sim.elapsed


def bench_pointwise_ratio_sweep(benchmark):
    model = build_model("Resnet50")
    fp32 = _step_time(model, PrecisionPolicy("fp32"))

    def sweep():
        return {
            ratio: fp32 / _step_time(
                model, PrecisionPolicy("mixed", pointwise_traffic_ratio=ratio)
            )
            for ratio in (0.5, 0.8, 1.0)
        }

    speedups = benchmark(sweep)
    # Cheaper pointwise => better mixed speedup, monotonically.
    assert speedups[0.5] > speedups[0.8] > speedups[1.0]


def bench_tc_coverage_sweep(benchmark):
    """Speedup as a function of cuDNN TC coverage of a conv layer."""
    device = get_device("v100")

    def sweep():
        out = {}
        for frac in (0.0, 0.5, 1.0):
            conv = Conv2D("c", 256, 256, 28, 28, tc_fraction=frac)
            (op,) = conv.ops(batch=64)
            fp32 = _op_time(op, device, PrecisionPolicy("fp32"))
            mixed = _op_time(op, device, PrecisionPolicy("mixed"))
            out[frac] = fp32 / mixed
        return out

    speedups = benchmark(sweep)
    assert speedups[0.0] < speedups[0.5] < speedups[1.0]
    # Full TC coverage approaches the raw TC/FP32 kernel ratio (~8x
    # before cast overhead).
    assert speedups[1.0] > 4.0


def _op_time(op, device, policy):
    from repro.dl.lowering import _op_kernels

    sim = SimulatedDevice(device)
    for k in _op_kernels(op, device, policy, suffix="fwd"):
        sim.launch(k)
    return sim.elapsed

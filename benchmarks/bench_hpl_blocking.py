"""Ablation: HPL block size vs GEMM runtime share.

DESIGN.md design choice: HPL's Fig. 3 GEMM share depends on the LU
block size.  In this model the GEMM efficiency is constant, so the only
nb effect is the panel's O(n^2 * nb) work — the GEMM share *falls*
monotonically with nb.  (On real hardware small blocks also make the
GEMM itself inefficient, which is why production HPL tunes nb upward;
holding GEMM efficiency constant isolates the panel-cost half of that
tradeoff.)
"""

import pytest

from repro.workloads import profile_workload
from repro.workloads.top500 import HPL


def bench_hpl_block_sweep(benchmark):
    def sweep():
        return {
            nb: profile_workload(HPL(n=4096, block=nb)).gemm_fraction
            for nb in (32, 64, 128, 256)
        }

    fractions = benchmark(sweep)
    # GEMM share falls with block size (panel work is O(n^2 * nb) while
    # GEMM efficiency is held constant) …
    assert fractions[32] > fractions[128] > fractions[256]
    # … and the production configuration sits in the paper's ~77 % zone.
    assert 0.60 < fractions[128] < 0.90


def bench_hpl_single_profile(benchmark):
    report = benchmark(profile_workload, HPL())
    assert report.gemm_fraction == pytest.approx(0.7681, abs=0.03)

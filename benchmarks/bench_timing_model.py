"""Ablation: effect of the roofline's memory bound on Fig. 3 fractions.

DESIGN.md design choice: workload fractions are computed with a
two-bound roofline.  Removing the memory bound (a fictional
infinite-bandwidth Xeon) shifts GEMM shares upward for apps whose
"other" work is bandwidth-bound — quantifying how much of Fig. 3's
shape comes from the memory system rather than flop counts.
"""

import dataclasses

import pytest

from repro.hardware import get_device
from repro.workloads import get_workload, profile_workload


def _infinite_bandwidth_system1():
    base = get_device("system1")
    mem = dataclasses.replace(base.memory, bandwidth_bps=1e18)
    return dataclasses.replace(base, name="system1-infbw", memory=mem)


def bench_memory_bound_ablation(benchmark):
    hpl = get_workload("HPL")
    laghos = get_workload("ECP/Laghos")

    def run():
        real = {
            "HPL": profile_workload(hpl, "system1").gemm_fraction,
            "Laghos": profile_workload(laghos, "system1").gemm_fraction,
        }
        infbw = {
            "HPL": profile_workload(hpl, _infinite_bandwidth_system1()).gemm_fraction,
            "Laghos": profile_workload(
                laghos, _infinite_bandwidth_system1()
            ).gemm_fraction,
        }
        return real, infbw

    real, infbw = benchmark(run)
    # Without a memory bound, the bandwidth-bound non-GEMM phases
    # collapse and the GEMM share rises substantially.
    assert infbw["HPL"] > real["HPL"] + 0.05
    assert infbw["Laghos"] > real["Laghos"] + 0.10


def bench_device_dependence(benchmark):
    """The same workload profiled on CPU vs GPU models: fractions are
    a property of (workload, machine), as the paper's methodology
    implies."""
    w = get_workload("RIKEN/NTChem")

    def run():
        return (
            profile_workload(w, "system1").gemm_fraction,
            profile_workload(w, "v100").gemm_fraction,
        )

    cpu, gpu = benchmark(run)
    assert 0.0 < cpu < 1.0 and 0.0 < gpu < 1.0
    assert cpu != pytest.approx(gpu, abs=1e-6)

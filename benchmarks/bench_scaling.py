"""Bench: the strong-scaling erosion of the ME's value (extension)."""

import pytest

from repro.analysis import hpl_strong_scaling


def bench_hpl_strong_scaling(benchmark):
    sweep = benchmark(
        hpl_strong_scaling, n=16384, node_counts=(1, 16, 256)
    )
    shares = [pt.gemm_fraction for pt in sweep]
    savings = [pt.me_reduction(4.0) for pt in sweep]
    assert shares == sorted(shares, reverse=True)
    assert savings == sorted(savings, reverse=True)
    # From near-ideal to marginal: the single-node promise does not
    # survive 256 ranks.
    assert shares[0] > 0.9
    assert shares[-1] < 0.3

"""Shared fixtures for the paper-artefact benchmark suite.

Every ``bench_*`` module regenerates one table or figure of the paper
under ``pytest-benchmark`` timing and asserts its shape claims, so
``pytest benchmarks/ --benchmark-only`` doubles as the reproduction's
end-to-end check.
"""

import pytest


@pytest.fixture(scope="session")
def paper_table_iv():
    """The paper's Table IV values: (speedup, %TC, %TC comp, %Mem)."""
    return {
        "BERT": (3.39, 50.86, 55.26, 7.97),
        "Cosmoflow": (1.16, 0.04, 0.05, 22.90),
        "VGG16": (1.71, 12.30, 12.74, 3.45),
        "Resnet50": (1.97, 16.32, 16.78, 2.76),
        "DeepLabV3": (1.75, 16.33, 16.44, 0.69),
        "SSD300": (1.78, 8.55, 8.66, 1.32),
        "NCF": (0.97, 22.37, 26.79, 16.50),
        "GEMM": (7.59, 20.08, 99.90, 79.90),
        "GRU": (3.67, 6.59, 7.48, 11.94),
        "LSTM": (5.69, 11.63, 13.85, 16.03),
        "Conv2D": (1.12, 0.27, 0.32, 16.78),
        "Attention": (3.49, 44.49, 58.19, 23.55),
    }


@pytest.fixture(scope="session")
def paper_fig3_gemm():
    """The GEMM shares the paper reports in Sec. III-D3 (percent)."""
    return {
        "HPL": 76.81,
        "Laghos": 41.24,
        "NTChem": 25.78,
        "Nekbone": 4.58,
        "botsspar": 18.9,
        "bt331": 14.16,
        "milc": 40.16,
        "dmilc": 35.57,
        "socorro": 9.52,
    }

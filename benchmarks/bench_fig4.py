"""Regenerate Fig. 4 (node-hour reduction extrapolations)."""

import math

import pytest

from repro.harness import fig4


def _reduction(panel, speedup):
    for pt in panel["series"]:
        if pt["speedup"] == speedup:
            return pt["reduction"] * 100
    raise KeyError(speedup)


def bench_fig4(benchmark):
    f = benchmark(fig4)
    k = f["panels"]["4a_k_computer"]
    anl = f["panels"]["4b_anl"]
    fut = f["panels"]["4c_future"]
    # Fig. 4a: K computer — 5.3 % at 4x, 7.1 % at infinity.
    assert _reduction(k, 4.0) == pytest.approx(5.3, abs=0.7)
    assert _reduction(k, math.inf) == pytest.approx(7.1, abs=0.7)
    # Fig. 4b: ANL — 11.5 % at 4x.
    assert _reduction(anl, 4.0) == pytest.approx(11.5, abs=1.5)
    # Fig. 4c: future 20 %-AI system — 23.8 % / 32.8 %.
    assert _reduction(fut, 4.0) == pytest.approx(23.8, abs=1.5)
    assert _reduction(fut, math.inf) == pytest.approx(32.8, abs=1.5)
    # Domain shares are well-formed in every panel.
    for panel in f["panels"].values():
        assert sum(d["share"] for d in panel["domains"]) == pytest.approx(1.0)

"""Price the resilience layer's production overhead: ≈ zero.

With no fault plan installed, every :func:`fault_point` call is one
contextvar read.  These benchmarks measure that read directly, count
how many times the warm pipeline and the warm serve path actually
consult it (by running once under a never-matching plan, whose injector
tallies every site), and assert the product stays under 2 % of the
respective warm wall time — the PR's no-chaos overhead budget.
"""

import time

from repro.harness.cache import SUBSTRATE_CACHE
from repro.harness.pipeline import run_pipeline
from repro.resilience import (
    FaultPlan,
    FaultRule,
    fault_context,
    fault_point,
)
from repro.serve import ServeClient

OVERHEAD_BUDGET = 0.02

#: A plan that matches no real site: installs a counting injector
#: without ever injecting, so ``snapshot()["seen"]`` tallies exactly
#: how many hook consultations a workload performs.
COUNTING_PLAN = FaultPlan(
    name="counting", rules=(FaultRule(site="never:*"),)
)


def _hook_cost_s(calls: int = 200_000) -> float:
    """Per-call cost of the disarmed hook (no injector installed)."""
    t0 = time.perf_counter()
    for _ in range(calls):
        fault_point("bench:disarmed")
    return (time.perf_counter() - t0) / calls


def bench_fault_point_disarmed(benchmark):
    """The hook itself: one contextvar read, far under a microsecond."""

    def burst():
        for _ in range(1000):
            fault_point("bench:disarmed")

    benchmark(burst)
    assert _hook_cost_s() < 5e-6


def bench_pipeline_warm_hook_overhead(benchmark):
    """Warm full-pipeline regeneration pays <2 % to the disarmed hooks."""
    SUBSTRATE_CACHE.clear()
    run_pipeline()  # prime every substrate

    run = benchmark(run_pipeline)
    assert len(run.results) == 13

    with fault_context(COUNTING_PLAN) as injector:
        t0 = time.perf_counter()
        run_pipeline()
        warm_s = time.perf_counter() - t0
    consultations = sum(injector.snapshot()["seen"].values())
    assert consultations >= 13  # at least one per artefact

    overhead = consultations * _hook_cost_s() / warm_s
    assert overhead < OVERHEAD_BUDGET, (
        f"disarmed hooks cost {overhead:.2%} of the warm pipeline "
        f"({consultations} consultations)"
    )


def bench_serve_warm_hook_overhead(benchmark):
    """The warm serve path (cache hits) is hook-free by construction;
    even the cold path's consultations stay inside the 2 % budget."""
    requests = [
        ("node_hours", {"scenario": s, "speedup": x})
        for s in ("k_computer", "anl", "future")
        for x in (2.0, 4.0, 8.0)
    ]

    with ServeClient(workers=2) as client:
        client.query_many(requests)  # warm the result cache

        def warm_round():
            return client.query_many(requests)

        responses = benchmark(warm_round)
        assert all(r.cached for r in responses)

        t0 = time.perf_counter()
        warm_round()
        warm_s = time.perf_counter() - t0

        # Count consultations for the same traffic with an armed (but
        # never-matching) plan: warm hits never reach the handler site.
        client.engine._injector = None
        with fault_context(COUNTING_PLAN) as injector:
            client.engine._injector = injector
            client.query_many(requests)
        seen = injector.snapshot()["seen"]

    warm_consultations = sum(
        n for site, n in seen.items() if site.startswith("handler:")
    )
    assert warm_consultations == 0  # cache hits bypass the hook entirely
    overhead = sum(seen.values()) * _hook_cost_s() / warm_s
    assert overhead < OVERHEAD_BUDGET

"""Ablation: Ozaki accuracy modes (full grid vs reduced pair sets).

DESIGN.md design choice: the accuracy-reduced pair selection is what
makes the emulation affordable — this bench quantifies the products
saved and the accuracy retained for each mode.
"""

import numpy as np
import pytest

from repro.ozaki import ozaki_gemm


def _wide(rng, shape, decades):
    return rng.normal(size=shape) * np.exp(
        rng.uniform(0, decades * np.log(10.0), size=shape)
    )


def bench_ozaki_accuracy_modes(benchmark):
    rng = np.random.default_rng(77)
    a = _wide(rng, (64, 64), 16)
    b = _wide(rng, (64, 64), 16)

    def run_all_modes():
        return {
            acc: ozaki_gemm(a, b, accuracy=acc)
            for acc in ("full", "dgemm", "sgemm")
        }

    results = benchmark(run_all_modes)
    full, dg, sg = results["full"], results["dgemm"], results["sgemm"]
    # Cost ordering: the reduction is substantial.
    assert sg.num_products < dg.num_products < full.num_products
    assert dg.num_products < 0.75 * full.num_products
    # Accuracy ordering vs the full (exact) result.
    scale = np.abs(a) @ np.abs(b)
    err_d = np.abs(dg.c - full.c) / scale
    err_s = np.abs(sg.c - full.c) / scale
    assert err_d.max() <= 64 * 2.0**-50
    assert err_s.max() <= 64 * 2.0**-21
    assert err_d.max() <= err_s.max()


def bench_ozaki_compensated_summation(benchmark):
    """Ablation: compensated vs plain final summation."""
    rng = np.random.default_rng(78)
    a = _wide(rng, (48, 48), 24)
    b = _wide(rng, (48, 48), 24)

    def run():
        comp = ozaki_gemm(a, b, accuracy="full", compensated=True)
        plain = ozaki_gemm(a, b, accuracy="full", compensated=False)
        return comp, plain

    comp, plain = benchmark(run)
    scale = np.abs(a) @ np.abs(b)
    err_comp = np.abs(comp.c - plain.c) / scale
    # Both are highly accurate; they agree to fp64 rounding levels, and
    # the compensated variant is the bit-reproducible reference.
    assert err_comp.max() < 1e-14

"""Benchmark the scenario overlay seam.

Two claims are priced and asserted here.  First, resolving every
catalogue lookup through the active :class:`ScenarioSpec` is free at
the baseline and within the noise floor under an overlay: a warm
``repro-paper`` run with a non-empty scenario installed must stay
within 5% of the warm baseline run.  Second, the overlay never
contaminates shared state: distinct scenarios partition the substrate
cache (every overlay key carries its scenario's fingerprint, no key
appears in two partitions) and the serving layer's result cache keeps
one entry per (query, scenario) pair.
"""

import pathlib
import time

from repro.harness.cache import SUBSTRATE_CACHE
from repro.harness.pipeline import run_pipeline
from repro.scenario import load_scenario, scenario_from_dict
from repro.serve import ServeClient

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples" / "scenarios"

#: Per the issue: a warm overlay run may cost at most 5% over baseline.
MAX_OVERLAY_OVERHEAD = 0.05


def _snapshot_keys():
    with SUBSTRATE_CACHE._mutex:
        return set(SUBSTRATE_CACHE._values)


def _scenario_token(full_key):
    """The scenario fingerprint a cache key carries, or None (baseline)."""
    _, key = full_key
    if key and isinstance(key[0], tuple) and key[0] and key[0][0] == "__scenario__":
        return key[0][1]
    return None


def bench_scenario_overlay_overhead(benchmark):
    """A warm full run under an overlay costs <5% over the warm baseline."""
    overlay = load_scenario(EXAMPLES / "int8_matrix_engine.json")
    SUBSTRATE_CACHE.clear()
    run_pipeline()                    # warm the baseline partition
    run_pipeline(scenario=overlay)    # warm the overlay partition

    def paired_round():
        t0 = time.perf_counter()
        run_pipeline()
        t1 = time.perf_counter()
        run_pipeline(scenario=overlay)
        t2 = time.perf_counter()
        return t1 - t0, t2 - t1

    rounds = [paired_round() for _ in range(7)]
    base = min(b for b, _ in rounds)
    over = min(o for _, o in rounds)
    overhead = over / base - 1.0
    assert overhead <= MAX_OVERLAY_OVERHEAD, (
        f"overlay resolution added {overhead:.1%} to a warm run "
        f"(baseline {base:.3f}s, overlay {over:.3f}s)"
    )

    run = benchmark.pedantic(
        lambda: run_pipeline(scenario=overlay), rounds=3, iterations=1
    )
    assert run.manifest["scenario"] == {
        "label": overlay.label(),
        "fingerprint": overlay.fingerprint,
    }
    assert run.manifest["cache"]["hits"] > 0  # served from the warm partition


def bench_scenario_cache_isolation(benchmark):
    """Distinct scenarios never share a cache entry, at either layer."""
    spec_a = scenario_from_dict(
        {"name": "seed-a", "substrate_seeds": {"k_year": 11}})
    spec_b = scenario_from_dict(
        {"name": "seed-b", "substrate_seeds": {"k_year": 17}})
    assert spec_a.fingerprint != spec_b.fingerprint

    SUBSTRATE_CACHE.clear()
    run_pipeline()
    baseline_keys = _snapshot_keys()
    run_pipeline(scenario=spec_a)
    keys_a = _snapshot_keys() - baseline_keys
    run_pipeline(scenario=spec_b)
    keys_b = _snapshot_keys() - baseline_keys - keys_a

    # Every partition is fully populated and tagged with its own owner.
    assert len(keys_a) == len(baseline_keys) == len(keys_b) > 0
    assert {_scenario_token(k) for k in baseline_keys} == {None}
    assert {_scenario_token(k) for k in keys_a} == {spec_a.fingerprint}
    assert {_scenario_token(k) for k in keys_b} == {spec_b.fingerprint}
    assert not keys_a & keys_b

    # The serving layer keeps one result-cache entry per scenario too:
    # the first query under each scenario computes, the repeats hit.
    params = {"scenario": "k_computer", "speedup": 4.0}
    with ServeClient(workers=2, cache_size=64) as client:
        first_a = client.query("node_hours", params, scenario=spec_a)
        first_b = client.query("node_hours", params, scenario=spec_b)
        again_a = client.query("node_hours", params, scenario=spec_a)
        again_b = client.query("node_hours", params, scenario=spec_b)
    assert not first_a.cached and not first_b.cached
    assert again_a.cached and again_b.cached
    assert first_a.value == first_b.value  # seeds don't touch Fig. 4 math

    # Timing: one warm re-run of each partition back to back.
    def warm_pair():
        run_pipeline(scenario=spec_a)
        run_pipeline(scenario=spec_b)

    benchmark.pedantic(warm_pair, rounds=3, iterations=1)
    assert _snapshot_keys() == baseline_keys | keys_a | keys_b

"""Regenerate Table III (Spack dependency distances)."""

import pytest

from repro.harness import table_iii


def bench_table_iii(benchmark):
    t = benchmark(table_iii)
    by_dist = {r["distance"]: r for r in t["rows"]}
    # Raw column: exact reproduction of the published histogram.
    assert by_dist[0]["count"] == 14
    assert by_dist[1]["count"] == 239
    assert by_dist[2]["count"] == 762
    assert by_dist[3]["count"] == 968
    assert by_dist["1-inf"]["count"] == 3061
    assert by_dist["1-inf"]["percent"] == pytest.approx(70.03, abs=0.01)
    # Merged column: the ~halving of reachable share.
    assert by_dist["1-inf"]["percent_merged"] == pytest.approx(51.45, abs=4.0)

"""Regenerate Fig. 2 (ResNet50 training energy efficiency across chips)."""

import pytest

from repro.harness import fig2


def bench_fig2(benchmark):
    f = benchmark(fig2)
    rows = {r["device"]: r for r in f["rows"]}
    assert len(rows) == 7
    # Marginal generational gains at fp32 (the figure's message) …
    assert (
        rows["v100"]["fp32_samples_per_j"]
        / rows["gtx1080ti"]["fp32_samples_per_j"]
        < 1.6
    )
    # … but mixed precision doubles throughput at comparable power.
    v100 = rows["v100"]
    assert v100["mixed_samples_per_s"] / v100["fp32_samples_per_s"] == (
        pytest.approx(2.0, abs=0.4)
    )
    assert v100["mixed_power_w"] == pytest.approx(v100["fp32_power_w"], rel=0.25)
    # CPU brings up the rear.
    worst = min(rows.values(), key=lambda r: r["fp32_samples_per_j"])
    assert worst["device"] == "xeon-gold-6148"

"""Benches for the Sec. V opportunity extensions."""

import numpy as np
import pytest

from repro.analysis import crossover_density
from repro.precision import lu_iterative_refinement


def bench_spgemm_crossover(benchmark):
    """Sec. V-A2: the tiled-ME SpGEMM crossover exists and is monotone."""
    rows = benchmark(
        crossover_density, n=256, densities=(0.002, 0.05, 0.3, 0.6)
    )
    speedups = [r["speedup"] for r in rows]
    # CSR wins in the hyper-sparse regime, the engine wins dense-ish.
    # (The low-density end is not strictly monotone: tile occupancy and
    # CSR work grow at different rates before the grid saturates.)
    assert speedups[0] < 1.0 < speedups[-1]
    assert max(speedups) == speedups[-1]


def bench_iterative_refinement(benchmark):
    """Sec. V-A3: fp16-factorised solves reach fp64 accuracy in a few
    refinement sweeps."""
    rng = np.random.default_rng(9)
    n = 128
    a = rng.normal(size=(n, n)) + n * np.eye(n)
    b = rng.normal(size=n)
    res = benchmark(lu_iterative_refinement, a, b, factorization="fp16")
    assert res.converged
    assert res.iterations <= 8
    assert float(np.linalg.norm(a @ res.x - b) / np.linalg.norm(b)) < 1e-11

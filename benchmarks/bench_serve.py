"""Load-test the what-if query service: 1,000 mixed queries.

The load is a seeded sample from a finite pool of distinct questions
(≥30% duplicates by construction — real planner traffic repeats
itself), issued concurrently through :class:`ServeClient`.  Each round
asserts the serving claims, not just the timing: the combined
cache-hit + coalesce ratio clears 0.25, the admission queue never grows
past its bound, nothing is shed, and every single response is
byte-identical to calling the underlying library directly.
"""

import json
import random
import threading

from repro.analysis.costbenefit import assess_scenario, me_speedup_estimate
from repro.harness.export import to_jsonable
from repro.hardware.registry import get_device
from repro.hardware.roofline import (
    achievable_flops,
    arithmetic_intensity,
    machine_balance,
    roofline_time,
)
from repro.ozaki.perf import emulated_gemm_performance
from repro.serve import SCENARIOS, ServeClient

N_QUERIES = 1_000
SEED = 20210517  # the ozaki substrate's seed, reused for the load mix
MAX_QUEUE = 256


def _request_pool():
    """The distinct questions the synthetic planner keeps asking."""
    pool = []
    for scenario in ("k_computer", "anl", "future", "fugaku"):
        for speedup in (2.0, 4.0, 8.0, "inf"):
            pool.append(("node_hours", {"scenario": scenario,
                                        "speedup": speedup}))
        pool.append(("costbenefit", {"scenario": scenario,
                                     "me_speedup": 4.0}))
    for device in ("v100", "a100"):
        pool.append(("me_speedup", {"device": device, "fmt": "fp16"}))
    for device, fmt in (("v100", "fp16"), ("a100", "fp16"), ("tpuv3", "bf16")):
        pool.append(("roofline", {"device": device, "flops": 2e12,
                                  "nbytes": 4e9, "fmt": fmt}))
    for impl in ("cublasDgemm", "DGEMM-TC", "SGEMM-TC"):
        pool.append(("ozaki", {"implementation": impl, "input_range": 1e8}))
    return pool


def _req_key(kind, params):
    return json.dumps({"kind": kind, "params": params}, sort_keys=True)


def _direct_answer(kind, params):
    """The library's answer, computed without the serving layer."""
    if kind == "node_hours":
        scenario = SCENARIOS[params["scenario"]]()
        speedup = float(params["speedup"])
        return to_jsonable(
            {
                "machine": scenario.name,
                "speedup": speedup,
                "reduction": scenario.reduction(speedup),
                "consumed_fraction": scenario.consumed_fraction(speedup),
                "throughput_improvement":
                    scenario.throughput_improvement(speedup),
                "node_hours_saved": scenario.node_hours_saved(speedup),
            }
        )
    if kind == "costbenefit":
        report = assess_scenario(
            SCENARIOS[params["scenario"]](), me_speedup=params["me_speedup"]
        )
        answer = to_jsonable(report)
        answer["worthwhile"] = report.worthwhile
        answer["verdict"] = report.verdict()
        return answer
    if kind == "me_speedup":
        return to_jsonable(
            {
                "device": params["device"],
                "fmt": params["fmt"],
                "me_speedup": me_speedup_estimate(
                    params["device"], params["fmt"]
                ),
            }
        )
    if kind == "roofline":
        device = get_device(params["device"])
        unit = device.best_unit(params["fmt"])
        duration, t_comp, t_mem = roofline_time(
            device, unit, flops=params["flops"], nbytes=params["nbytes"],
            fmt=params["fmt"], kind="gemm",
        )
        return to_jsonable(
            {
                "device": params["device"],
                "unit": unit.name,
                "duration_s": duration,
                "t_compute_s": t_comp,
                "t_memory_s": t_mem,
                "bound": "compute" if t_comp >= t_mem else "memory",
                "arithmetic_intensity": arithmetic_intensity(
                    params["flops"], params["nbytes"]
                ),
                "machine_balance": machine_balance(device, params["fmt"]),
                "achievable_flops": achievable_flops(
                    unit, params["fmt"], "gemm"
                ),
            }
        )
    if kind == "ozaki":
        for row in emulated_gemm_performance(8192, "v100"):
            if row.implementation == params["implementation"] and (
                not row.implementation.endswith("-TC")
                or row.condition
                == f"input range: {params['input_range']:.0e}"
            ):
                return to_jsonable(row)
    raise AssertionError(f"no direct path for {kind}")


def _mixed_requests():
    rng = random.Random(SEED)
    pool = _request_pool()
    requests = [pool[rng.randrange(len(pool))] for _ in range(N_QUERIES)]
    duplicates = 1 - len({_req_key(k, p) for k, p in requests}) / len(requests)
    assert duplicates >= 0.30, f"load mix only {duplicates:.0%} duplicates"
    return requests


def _run_load(requests):
    """One full service lifecycle: boot, serve the mix, snapshot, stop."""
    depths = []
    with ServeClient(workers=4, max_queue=MAX_QUEUE, cache_size=256) as client:
        stop = threading.Event()

        def watch_queue():
            while not stop.is_set():
                depths.append(client.metrics()["gauges"]["queue_depth"])
                stop.wait(0.002)

        watcher = threading.Thread(target=watch_queue, daemon=True)
        watcher.start()
        try:
            responses = []
            for start in range(0, len(requests), 200):
                responses.extend(client.query_many(requests[start:start + 200]))
        finally:
            stop.set()
            watcher.join()
        return responses, client.metrics(), depths


def bench_serve_mixed_load(benchmark):
    requests = _mixed_requests()
    expected = {}
    for kind, params in requests:
        key = _req_key(kind, params)
        if key not in expected:
            expected[key] = _direct_answer(kind, params)
    _run_load(requests[:50])  # warm the substrate cache out of the timing

    responses, metrics, depths = benchmark.pedantic(
        _run_load, args=(requests,), rounds=3, iterations=1
    )

    assert len(responses) == N_QUERIES
    for (kind, params), response in zip(requests, responses):
        served = json.dumps(response.value, sort_keys=True)
        direct = json.dumps(expected[_req_key(kind, params)], sort_keys=True)
        assert served == direct, f"{kind} {params} diverged from the library"

    counters = metrics["counters"]
    assert counters["requests"] == N_QUERIES
    derived = metrics["derived"]
    reuse = derived["cache_hit_ratio"] + derived["coalesce_ratio"]
    assert reuse >= 0.25, f"hit+coalesce ratio {reuse:.2f} < 0.25"
    assert counters["shed"] == 0
    assert counters["timeouts"] == 0
    assert counters["errors"] == 0
    assert depths and max(depths) <= MAX_QUEUE, "admission queue grew unbounded"
    assert metrics["gauges"]["queue_depth"] == 0  # fully drained


def bench_serve_cache_off(benchmark):
    """The counterfactual: same mix, result cache disabled.

    Coalescing still dedups concurrent identical queries, but every
    answer not in flight is recomputed — the gap between this and
    ``bench_serve_mixed_load`` is what the LRU cache buys.
    """
    requests = _mixed_requests()

    def run_uncached():
        with ServeClient(workers=4, max_queue=MAX_QUEUE, cache_size=0) as c:
            responses = []
            for start in range(0, len(requests), 200):
                responses.extend(c.query_many(requests[start:start + 200]))
            return responses, c.metrics()

    run_uncached()  # substrate warm-up
    responses, metrics = benchmark.pedantic(run_uncached, rounds=3,
                                            iterations=1)
    assert len(responses) == N_QUERIES
    assert metrics["derived"]["cache_hit_ratio"] == 0.0
    assert metrics["counters"]["computed"] > len(_request_pool())

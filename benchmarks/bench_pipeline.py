"""Benchmark the artefact pipeline: cold vs warm cache, serial vs
parallel fan-out.

The cold benchmarks clear the substrate cache before every round so
they price a full regeneration; the warm benchmark prices the steady
state (every substrate already resident), which is what repeated
harness calls inside one process — tests, notebooks — actually pay.
"""

from repro.harness.cache import SUBSTRATE_CACHE
from repro.harness.pipeline import run_pipeline


def _cold_setup():
    SUBSTRATE_CACHE.clear()
    return (), {}


def _check(run):
    assert len(run.results) == 13
    assert all(meta["text_sha256"] for meta in run.manifest["artifacts"].values())


def bench_pipeline_cold_serial(benchmark):
    run = benchmark.pedantic(
        run_pipeline, setup=_cold_setup, rounds=3, iterations=1
    )
    _check(run)
    assert run.manifest["cache"]["misses"] == len(run.manifest["substrates"])


def bench_pipeline_cold_parallel(benchmark):
    run = benchmark.pedantic(
        lambda: run_pipeline(jobs=8), setup=_cold_setup, rounds=3, iterations=1
    )
    _check(run)
    assert run.manifest["jobs"] == 8


def bench_pipeline_warm(benchmark):
    run_pipeline()  # prime every substrate
    run = benchmark(run_pipeline)
    _check(run)
    assert run.manifest["cache"]["hits"] > 0

"""Regenerate Fig. 3 (GEMM/BLAS/LAPACK utilization of 77 benchmarks)."""

import pytest

from repro.harness import fig3


def bench_fig3(benchmark, paper_fig3_gemm):
    f = benchmark(fig3)
    assert len(f["rows"]) == 77
    # Key by (workload, suite): pop2/bwaves/imagick/nab recur across
    # suites (Table V).
    rows = {r["workload"]: r for r in f["rows"]}
    # Every paper-reported GEMM share within a band.
    for name, target in paper_fig3_gemm.items():
        got = rows[name]["gemm"] * 100
        assert got == pytest.approx(target, abs=max(1.5, 0.1 * target)), name
    # Only those nine benchmarks show any GEMM.
    with_gemm = [r for r in f["rows"] if r["gemm"] > 0.001]
    assert {r["workload"] for r in with_gemm} == set(paper_fig3_gemm)
    # miniFE/mVMC carry the non-GEMM BLAS / LAPACK signal.
    assert rows["miniFE"]["blas"] * 100 == pytest.approx(9.38, abs=2.0)
    assert rows["mVMC"]["lapack"] * 100 == pytest.approx(14.35, abs=2.5)
    # The 3.5 % average the paper quotes.
    mean = sum(r["gemm"] for r in f["rows"]) / len(f["rows"])
    assert mean * 100 == pytest.approx(3.5, abs=0.5)

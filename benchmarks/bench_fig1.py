"""Regenerate Fig. 1 (V100 power traces: HGEMM-TC vs SGEMM vs DGEMM)."""

import pytest

from repro.harness import fig1


def bench_fig1(benchmark):
    f = benchmark(fig1)
    s = f["series"]
    # Everything runs near the 300 W TDP …
    for v in s.values():
        assert 260.0 <= v["avg_power_w"] <= 300.0
    # … the TC variant slightly below the FPU GEMMs (dark silicon) …
    assert s["HGEMM (with TC)"]["avg_power_w"] < s["SGEMM"]["avg_power_w"]
    assert s["SGEMM"]["avg_power_w"] < s["DGEMM"]["avg_power_w"]
    # … at several times the throughput (the ~7.6x HGEMM/SGEMM kernel gap).
    assert s["HGEMM (with TC)"]["tflops"] / s["SGEMM"]["tflops"] == pytest.approx(
        6.4, abs=1.5
    )

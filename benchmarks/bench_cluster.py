"""Cluster scaling benchmark: open-loop Zipf load, ``--cluster 1`` vs ``4``.

Methodology (recorded in EXPERIMENTS.md):

* **Open-loop load**: arrivals are a Poisson process at a fixed offered
  rate, generated up front and fired on schedule by a sender pool —
  the arrival rate does NOT slow down when the service does, so an
  overloaded cluster shows up as completed-qps falling short of the
  offered rate (closed-loop load would hide that by self-throttling).
* **Zipf-skewed mix**: queries are drawn from a finite pool with
  popularity ~ 1/rank^1.1 — real planner traffic repeats itself, which
  is what gives the per-shard caches something to be warm about.
* **Self-calibrated rate**: the offered rate is a multiple of the
  1-shard cluster's measured closed-loop capacity, so the comparison
  stresses both cluster sizes on any machine instead of hard-coding a
  laptop's numbers.
* **Same per-worker configuration** at both sizes: the question is
  what N shards buy at fixed worker shape, not tuning.

The ≥2.5× aggregate-qps assertion is enforced only on machines with at
least 4 CPUs — four worker processes time-slicing one core cannot
scale, and pretending otherwise would make the bench flaky exactly
where it is most often run.  The cache co-location claim (per-shard
hit ratio no worse than single-process) is asserted everywhere.
"""

import itertools
import os
import random
import threading
import time

from repro.cluster import ClusterSupervisor
from repro.errors import ReproError
from repro.serve import HttpServeClient

SEED = 20210517
ZIPF_EXPONENT = 1.1
SENDERS = 48
CALIBRATE_S = 2.0
OPEN_LOOP_S = 6.0
RATE_MULTIPLE = 3.5   # offered rate vs measured 1-shard capacity
RATE_CAP = 800.0      # keep the sender pool honest on fast machines
SCALING_FLOOR = 2.5   # required aggregate qps ratio at --cluster 4
MIN_CPUS_FOR_SCALING = 4


def _request_pool():
    """~80 distinct questions; Zipf sampling makes the head popular."""
    pool = []
    for scenario in ("k_computer", "anl", "future", "fugaku"):
        for speedup in (1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, "inf"):
            pool.append(("node_hours", {"scenario": scenario,
                                        "speedup": speedup}))
        for speedup in (2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0):
            pool.append(("costbenefit", {"scenario": scenario,
                                         "me_speedup": speedup}))
    for device in ("v100", "a100"):
        for flops in (5e11, 1e12, 2e12, 4e12, 8e12, 1.6e13, 3.2e13, 6.4e13):
            pool.append(("roofline", {"device": device, "flops": flops,
                                      "nbytes": 4e9, "fmt": "fp16"}))
        pool.append(("me_speedup", {"device": device, "fmt": "fp16"}))
    rng = random.Random(SEED)
    rng.shuffle(pool)
    return pool


def _zipf_weights(n, s=ZIPF_EXPONENT):
    return [1.0 / (rank + 1) ** s for rank in range(n)]


def _boot(cluster_size, snapshot_dir):
    return ClusterSupervisor(
        cluster_size,
        snapshot_dir=str(snapshot_dir),
        boot_timeout_s=120.0,
        drain_timeout_s=10.0,
    )


def _calibrate(url, duration_s=CALIBRATE_S, threads=16):
    """Closed-loop capacity probe (doubles as cache warm-up)."""
    http = HttpServeClient(url, timeout=60)
    pool = _request_pool()
    weights = _zipf_weights(len(pool))
    completed = itertools.count()
    done = 0
    stop = threading.Event()

    def hammer(worker_id):
        rng = random.Random(SEED + worker_id)
        while not stop.is_set():
            kind, params = rng.choices(pool, weights=weights, k=1)[0]
            try:
                http.query(kind, params)
                next(completed)
            except ReproError:
                pass

    workers = [threading.Thread(target=hammer, args=(n,))
               for n in range(threads)]
    start = time.monotonic()
    for t in workers:
        t.start()
    time.sleep(duration_s)
    stop.set()
    for t in workers:
        t.join()
    done = next(completed)
    return done / (time.monotonic() - start)


def _open_loop(url, rate, duration_s=OPEN_LOOP_S):
    """Fire a pre-generated Poisson arrival schedule at ``url``."""
    http = HttpServeClient(url, timeout=60)
    rng = random.Random(SEED)
    pool = _request_pool()
    weights = _zipf_weights(len(pool))
    arrivals = []
    t = 0.0
    while True:
        t += rng.expovariate(rate)
        if t >= duration_s:
            break
        arrivals.append(t)
    requests = rng.choices(pool, weights=weights, k=len(arrivals))

    index = itertools.count()
    lock = threading.Lock()
    latencies, typed, unclassified = [], [], []
    start = time.monotonic() + 0.05
    last_done = [start]

    def sender():
        while True:
            i = next(index)
            if i >= len(arrivals):
                return
            delay = start + arrivals[i] - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            kind, params = requests[i]
            t0 = time.monotonic()
            try:
                http.query(kind, params)
            except ReproError as exc:
                with lock:
                    typed.append(exc)
            except Exception as exc:
                with lock:
                    unclassified.append(exc)
            else:
                t1 = time.monotonic()
                with lock:
                    latencies.append(t1 - t0)
                    last_done[0] = max(last_done[0], t1)

    threads = [threading.Thread(target=sender) for _ in range(SENDERS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = max(duration_s, last_done[0] - start)
    ordered = sorted(latencies)
    return {
        "offered_qps": len(arrivals) / duration_s,
        "qps": len(latencies) / elapsed,
        "completed": len(latencies),
        "typed_rejections": len(typed),
        "unclassified": unclassified,
        "p50_s": ordered[len(ordered) // 2] if ordered else 0.0,
        "p99_s": ordered[int(len(ordered) * 0.99)] if ordered else 0.0,
    }


def _hit_ratios(url):
    """(aggregate_ratio, per-shard ratios) from the cluster /metrics."""
    metrics = HttpServeClient(url, timeout=60).metrics()
    per_shard = {}
    for sid, entry in metrics["shards"].items():
        snap = entry["metrics"]
        if snap and snap["counters"]["requests"] > 0:
            per_shard[sid] = snap["derived"]["cache_hit_ratio"]
    return metrics["aggregate"]["cache_hit_ratio"], per_shard


def _scaling_run(tmpdir):
    results = {}
    with _boot(1, tmpdir / "c1") as single:
        capacity = _calibrate(single.url)
        rate = min(RATE_CAP, max(50.0, RATE_MULTIPLE * capacity))
        results["calibrated_capacity_qps"] = capacity
        results["offered_rate_qps"] = rate
        results[1] = _open_loop(single.url, rate)
        results["single_hit_ratio"], _ = _hit_ratios(single.url)
    with _boot(4, tmpdir / "c4") as quad:
        _calibrate(quad.url)  # symmetric warm-up, rate comes from c1
        results[4] = _open_loop(quad.url, rate)
        agg, per_shard = _hit_ratios(quad.url)
        results["cluster_hit_ratio"] = agg
        results["per_shard_hit_ratio"] = per_shard
    return results


def bench_cluster_scaling(benchmark, tmp_path):
    results = benchmark.pedantic(
        _scaling_run, args=(tmp_path,), rounds=1, iterations=1
    )

    for size in (1, 4):
        stats = results[size]
        assert stats["unclassified"] == [], (
            f"--cluster {size} leaked unclassified errors: "
            f"{stats['unclassified'][:5]}"
        )
        assert stats["completed"] > 0

    ratio = results[4]["qps"] / results[1]["qps"]
    print(
        f"\ncluster scaling @ offered {results['offered_rate_qps']:.0f} qps: "
        f"1-shard {results[1]['qps']:.0f} qps "
        f"(p99 {results[1]['p99_s'] * 1e3:.0f} ms) -> "
        f"4-shard {results[4]['qps']:.0f} qps "
        f"(p99 {results[4]['p99_s'] * 1e3:.0f} ms), ratio {ratio:.2f}x "
        f"on {os.cpu_count()} CPUs"
    )
    print(
        f"hit ratio: single {results['single_hit_ratio']:.2f}, "
        f"cluster aggregate {results['cluster_hit_ratio']:.2f}, "
        f"per-shard {results['per_shard_hit_ratio']}"
    )

    # Cache co-location holds at any CPU count: consistent hashing on
    # the canonical fingerprint keeps each shard's slice as repetitive
    # as the whole stream, so sharding must not dilute warmth.
    assert results["cluster_hit_ratio"] >= \
        results["single_hit_ratio"] - 0.05, results
    for sid, shard_ratio in results["per_shard_hit_ratio"].items():
        assert shard_ratio >= results["single_hit_ratio"] - 0.15, (
            sid, results
        )

    if (os.cpu_count() or 1) >= MIN_CPUS_FOR_SCALING:
        assert ratio >= SCALING_FLOOR, (
            f"aggregate qps only scaled {ratio:.2f}x "
            f"(floor {SCALING_FLOOR}x) — {results}"
        )
    else:
        print(
            f"scaling floor ({SCALING_FLOOR}x) not enforced: "
            f"{os.cpu_count()} CPU(s) < {MIN_CPUS_FOR_SCALING}; "
            "4 workers time-slicing one core cannot scale"
        )


def bench_router_overhead(benchmark, tmp_path):
    """Per-request router cost: a warm cached query through the
    1-shard cluster (router hop + worker hop) — compare with the
    single-process numbers in bench_serve to read the overhead."""
    with _boot(1, tmp_path / "overhead") as cluster:
        http = HttpServeClient(cluster.url, timeout=60)
        query = ("me_speedup", {"device": "v100", "fmt": "fp16"})
        http.query(*query)  # warm: everything after this is a cache hit

        def cached_round_trip():
            reply = http.query(*query)
            assert reply["cached"] is True
            return reply

        reply = benchmark(cached_round_trip)
        assert reply["shard"] == 0 and reply["spilled"] is False

"""Gate the vectorized sweep kernels: exact parity and a speedup floor.

The tentpole claim of :mod:`repro.analysis.arrays` is twofold: the
machines x mixes x speedups sweep evaluates bit-identically to the
scalar per-point path, and it does so at least an order of magnitude
faster.  This module measures both over a dense plane (the paper's four
machines plus seeded synthetic domain mixes) and *asserts* them, so the
benchmark run is the gate, not just a number.

Quick mode (``REPRO_VEC_BENCH_QUICK=1``) shrinks the plane and relaxes
the floor to >=3x for noisy shared CI runners; the parity assertion is
identical in both modes.
"""

import math
import os
import random
import time

from repro.analysis.arrays import SweepGrid
from repro.extrapolate import (
    DomainWorkload,
    NodeHourModel,
    amdahl_time_fraction,
    build_machine,
)

QUICK = os.environ.get("REPRO_VEC_BENCH_QUICK", "") not in ("", "0")

#: Plane size and floor: (synthetic mixes, finite speedup points, floor).
N_SYNTHETIC = 8 if QUICK else 32
N_SPEEDUPS = 48 if QUICK else 192
SPEEDUP_FLOOR = 3.0 if QUICK else 10.0
TIMING_REPS = 3 if QUICK else 5
SEED = 20210517  # shared with the serve load benchmark


def _synthetic_mixes(count: int) -> list[NodeHourModel]:
    """Seeded random domain mixes of varying width (3-10 domains)."""
    rng = random.Random(SEED)
    mixes = []
    for m in range(count):
        n = rng.randint(3, 10)
        raw = [rng.uniform(0.05, 1.0) for _ in range(n)]
        total = sum(raw)
        domains = tuple(
            DomainWorkload(
                f"d{m}_{i}",
                raw[i] / total,
                f"rep{i}",
                rng.uniform(0.0, 1.0),
            )
            for i in range(n)
        )
        mixes.append(
            NodeHourModel(
                f"synthetic_{m}",
                domains,
                total_node_hours=rng.uniform(1e5, 1e7),
            )
        )
    return mixes


def _sweep_plane():
    models = [
        build_machine(n) for n in ("k_computer", "anl", "future", "fugaku")
    ]
    models += _synthetic_mixes(N_SYNTHETIC)
    speedups = [
        1.0 + 63.0 * i / (N_SPEEDUPS - 1) for i in range(N_SPEEDUPS)
    ] + [math.inf]
    return models, speedups


def _scalar_sweep(models, speedups):
    """The pre-vectorization hot loop, verbatim: scalar Amdahl per point."""
    out = []
    for model in models:
        row = []
        for s in speedups:
            consumed = sum(
                d.share * amdahl_time_fraction(d.accelerable, s)
                for d in model.domains
            )
            row.append(
                (
                    consumed,
                    1.0 - consumed,
                    math.inf if consumed == 0.0 else 1.0 / consumed,
                    model.total_node_hours * (1.0 - consumed),
                )
            )
        out.append(row)
    return out


def _time(fn, reps: int) -> float:
    best = math.inf
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_vectorized_sweep_parity_and_speedup():
    models, speedups = _sweep_plane()
    n_points = len(models) * len(speedups)

    reference = _scalar_sweep(models, speedups)
    result = SweepGrid.from_models(models, speedups).evaluate()

    # -- parity gate: every cell of every tensor, exact ---------------------
    for m in range(len(models)):
        for i in range(len(speedups)):
            consumed, reduction, throughput, saved = reference[m][i]
            assert float(result.consumed_fraction[m, i]) == consumed
            assert float(result.reduction[m, i]) == reduction
            assert float(result.throughput_improvement[m, i]) == throughput
            assert float(result.node_hours_saved[m, i]) == saved

    # -- speedup gate -------------------------------------------------------
    scalar_s = _time(lambda: _scalar_sweep(models, speedups), TIMING_REPS)
    vector_s = _time(
        lambda: SweepGrid.from_models(models, speedups).evaluate(),
        TIMING_REPS,
    )
    speedup = scalar_s / vector_s
    print(
        f"\nvectorized sweep: {len(models)} machines x {len(speedups)} "
        f"speedups = {n_points} points; scalar {scalar_s * 1e3:.2f} ms, "
        f"vectorized {vector_s * 1e3:.2f} ms, speedup {speedup:.1f}x "
        f"(floor {SPEEDUP_FLOOR:.0f}x, quick={QUICK})"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"vectorized sweep only {speedup:.1f}x over scalar "
        f"(floor {SPEEDUP_FLOOR}x on {n_points} points)"
    )


if __name__ == "__main__":
    test_vectorized_sweep_parity_and_speedup()
    print("bench_vectorized: parity and speedup gates passed")

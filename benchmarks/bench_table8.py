"""Regenerate Table VIII (cuBLAS vs Ozaki GEMM-TC emulation)."""

import pytest

from repro.harness import table_viii


def bench_table_viii(benchmark):
    t = benchmark(table_viii)
    rows = {(r["implementation"], r["condition"]): r for r in t["rows"]}

    # Native cuBLAS rows: calibrated to the paper's measurements.
    assert rows[("cublasGemmEx", "FP16/FP32-mixed")]["tflops"] == pytest.approx(92.28, rel=0.01)
    assert rows[("cublasSgemm", "—")]["tflops"] == pytest.approx(14.54, rel=0.01)
    assert rows[("cublasDgemm", "—")]["tflops"] == pytest.approx(7.20, rel=0.01)

    # Emulation rows: correct orderings and monotone range degradation.
    for target in ("SGEMM-TC", "DGEMM-TC"):
        series = [
            rows[(target, f"input range: 1e+{d:02d}")]["tflops"]
            for d in (8, 16, 32)
        ]
        assert series[0] > series[1] > series[2]
    for cond in ("1e+08", "1e+16", "1e+32"):
        s = rows[("SGEMM-TC", f"input range: {cond}")]
        d = rows[("DGEMM-TC", f"input range: {cond}")]
        assert s["tflops"] > d["tflops"]
        assert d["tflops"] < rows[("cublasDgemm", "—")]["tflops"]


def bench_ozaki_numerics(benchmark):
    """The numerical half of Table VIII: DGEMM-equivalent accuracy."""
    import numpy as np

    from repro.ozaki import ozaki_gemm

    rng = np.random.default_rng(8)
    a = rng.normal(size=(96, 96)) * np.exp(rng.uniform(0, 18, (96, 96)))
    b = rng.normal(size=(96, 96)) * np.exp(rng.uniform(0, 18, (96, 96)))
    result = benchmark(ozaki_gemm, a, b, accuracy="dgemm")
    scale = np.abs(a) @ np.abs(b)
    assert (np.abs(result.c - a @ b) <= 8 * 96 * 2.0**-53 * scale).all()

"""Tail-tolerance benchmark: one slow shard vs the hedged router.

The experiment that motivates the whole tail-tolerant lifecycle:

* A 4-shard cluster where exactly **one** shard (shard 0) carries a
  fault plan injecting 250 ms of latency into every handler evaluation
  (``--fault-plan-shard``) — cache hits stay fast, so the slow events
  are precisely that shard's cache misses: a classic few-percent
  latency tail, invisible to the mean.
* **Open-loop Zipf load** (same methodology as ``bench_cluster``):
  Poisson arrivals at a fixed offered rate that does not slow down when
  the service does, every request carrying a deadline budget in
  ``X-Repro-Deadline-Ms``.
* Two identical runs, **hedge on vs hedge off**.  With hedging, any
  request still unanswered after its kind's rolling p95 races a backup
  on the next ring neighbour and the first answer wins; the budget
  keeps both attempts honest.

Gates (full mode; ``REPRO_TAIL_QUICK=1`` relaxes them for CI smoke):

* hedging cuts cluster p99 by >= 2x against the degraded shard,
* hedge traffic stays <= 5% of requests (the allowance cap, measured),
* the cache hit ratio gives up <= 2 points to hedging's duplicate work.

The p99 gate is enforced only on machines with >= 4 CPUs — four worker
processes time-slicing one core produce queueing noise that swamps the
injected tail.
"""

import itertools
import json
import os
import random
import threading
import time

from repro.cluster import ClusterSupervisor
from repro.errors import ReproError
from repro.serve import HttpServeClient

SEED = 20210517
ZIPF_EXPONENT = 1.1
SENDERS = 32
CLUSTER_SIZE = 4
SLOW_SHARD = 0
SLOW_HANDLER_S = 0.25
CACHE_SIZE = 12           # small on purpose: the Zipf tail keeps missing
DEADLINE_MS = 10_000.0
HEDGE_RATIO = 0.05
MIN_CPUS_FOR_P99 = 4

QUICK = os.environ.get("REPRO_TAIL_QUICK", "") not in ("", "0")
WARM_S = 2.0 if QUICK else 4.0
OPEN_LOOP_S = 6.0 if QUICK else 10.0
OFFERED_QPS = 50.0 if QUICK else 60.0
#: Quick (CI smoke) mode cannot gate the p99 ratio: a few hundred
#: samples put 2-3 observations past the 99th percentile, so the ratio
#: is a coin flip.  The smoke run gates the lifecycle invariants
#: (hedges fire, stay under the cap, keep the cache warm, leak nothing)
#: and leaves the tail claim to the full benchmark.
P99_FLOOR = None if QUICK else 2.0
HEDGE_SHARE_CAP = 0.08 if QUICK else 0.05
HIT_RATIO_GIVEBACK = 0.05 if QUICK else 0.02


def _request_pool():
    """~80 distinct questions; Zipf sampling makes the head popular."""
    pool = []
    for scenario in ("k_computer", "anl", "future", "fugaku"):
        for speedup in (1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, "inf"):
            pool.append(("node_hours", {"scenario": scenario,
                                        "speedup": speedup}))
        for speedup in (2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0):
            pool.append(("costbenefit", {"scenario": scenario,
                                         "me_speedup": speedup}))
    for device in ("v100", "a100"):
        for flops in (5e11, 1e12, 2e12, 4e12, 8e12, 1.6e13, 3.2e13, 6.4e13):
            pool.append(("roofline", {"device": device, "flops": flops,
                                      "nbytes": 4e9, "fmt": "fp16"}))
        pool.append(("me_speedup", {"device": device, "fmt": "fp16"}))
    rng = random.Random(SEED)
    rng.shuffle(pool)
    return pool


def _zipf_weights(n, s=ZIPF_EXPONENT):
    return [1.0 / (rank + 1) ** s for rank in range(n)]


def _write_fault_plan(tmp_path):
    """Every handler evaluation on the planted shard eats 250 ms."""
    plan = {
        "name": "slow-shard",
        "description": "one degraded shard: latency on every handler call",
        "seed": SEED,
        "rules": [{
            "site": "handler:*",
            "kind": "latency",
            "latency_s": SLOW_HANDLER_S,
            "rate": 1.0,
        }],
    }
    path = tmp_path / "slow-shard.json"
    path.write_text(json.dumps(plan))
    return str(path)


def _boot(tmp_path, plan_file, *, hedge):
    return ClusterSupervisor(
        CLUSTER_SIZE,
        cache_size=CACHE_SIZE,
        fault_plan_file=plan_file,
        fault_plan_shard=SLOW_SHARD,
        hedge=hedge,
        hedge_ratio=HEDGE_RATIO,
        snapshot_dir=str(tmp_path / ("hedged" if hedge else "unhedged")),
        boot_timeout_s=120.0,
        drain_timeout_s=10.0,
    )


def _warm(url, duration_s=WARM_S, threads=16):
    """Closed-loop warm-up: fills the per-shard caches and gives the
    router the >= 20 per-kind latency observations hedging needs."""
    http = HttpServeClient(url, timeout=60)
    pool = _request_pool()
    weights = _zipf_weights(len(pool))
    stop = threading.Event()

    def hammer(worker_id):
        rng = random.Random(SEED + worker_id)
        while not stop.is_set():
            kind, params = rng.choices(pool, weights=weights, k=1)[0]
            try:
                http.query(kind, params, deadline_ms=DEADLINE_MS)
            except ReproError:
                pass

    workers = [threading.Thread(target=hammer, args=(n,))
               for n in range(threads)]
    for t in workers:
        t.start()
    time.sleep(duration_s)
    stop.set()
    for t in workers:
        t.join()


def _open_loop(url, rate, duration_s=OPEN_LOOP_S):
    """Fire a pre-generated Poisson arrival schedule at ``url``, every
    request carrying a deadline budget header."""
    http = HttpServeClient(url, timeout=60)
    rng = random.Random(SEED)
    pool = _request_pool()
    weights = _zipf_weights(len(pool))
    arrivals = []
    t = 0.0
    while True:
        t += rng.expovariate(rate)
        if t >= duration_s:
            break
        arrivals.append(t)
    requests = rng.choices(pool, weights=weights, k=len(arrivals))

    index = itertools.count()
    lock = threading.Lock()
    latencies, typed, unclassified = [], [], []
    cached = itertools.count()
    start = time.monotonic() + 0.05

    def sender():
        while True:
            i = next(index)
            if i >= len(arrivals):
                return
            delay = start + arrivals[i] - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            kind, params = requests[i]
            t0 = time.monotonic()
            try:
                reply = http.query(kind, params, deadline_ms=DEADLINE_MS)
            except ReproError as exc:
                with lock:
                    typed.append(exc)
            except Exception as exc:
                with lock:
                    unclassified.append(exc)
            else:
                if reply.get("cached"):
                    next(cached)
                with lock:
                    latencies.append(time.monotonic() - t0)

    threads = [threading.Thread(target=sender) for _ in range(SENDERS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    ordered = sorted(latencies)
    return {
        "offered_qps": len(arrivals) / duration_s,
        "completed": len(latencies),
        "typed_rejections": len(typed),
        "unclassified": unclassified,
        # Client-perceived cache effectiveness: the fraction of answers
        # served from a warm cache.  Worker-side ratios double-count
        # hedged duplicates (the backup's miss is bookkeeping, not a
        # colder cache), so the gate uses the client's view.
        "hit_ratio": next(cached) / max(1, len(latencies)),
        "p50_s": ordered[len(ordered) // 2] if ordered else 0.0,
        "p99_s": ordered[int(len(ordered) * 0.99)] if ordered else 0.0,
    }


def _router_counters(url):
    metrics = HttpServeClient(url, timeout=60).metrics()
    return metrics["cluster"]["router"]["counters"]


def _one_run(tmp_path, plan_file, *, hedge):
    with _boot(tmp_path, plan_file, hedge=hedge) as cluster:
        _warm(cluster.url)
        stats = _open_loop(cluster.url, OFFERED_QPS)
        stats["router"] = _router_counters(cluster.url)
    return stats


def _tail_run(tmp_path):
    plan_file = _write_fault_plan(tmp_path)
    return {
        "unhedged": _one_run(tmp_path, plan_file, hedge=False),
        "hedged": _one_run(tmp_path, plan_file, hedge=True),
    }


def bench_tail_hedging(benchmark, tmp_path):
    results = benchmark.pedantic(
        _tail_run, args=(tmp_path,), rounds=1, iterations=1
    )
    hedged, unhedged = results["hedged"], results["unhedged"]

    for label, stats in results.items():
        assert stats["unclassified"] == [], (
            f"{label} leaked unclassified errors: "
            f"{stats['unclassified'][:5]}"
        )
        assert stats["completed"] > 0, (label, stats)

    hedges = hedged["router"]["hedges"]
    requests = hedged["router"]["requests"]
    hedge_share = hedges / max(1, requests)
    ratio = unhedged["p99_s"] / max(1e-9, hedged["p99_s"])
    print(
        f"\ntail @ offered {OFFERED_QPS:.0f} qps, one shard +"
        f"{SLOW_HANDLER_S * 1e3:.0f} ms/handler: "
        f"unhedged p99 {unhedged['p99_s'] * 1e3:.0f} ms "
        f"(p50 {unhedged['p50_s'] * 1e3:.0f} ms) -> "
        f"hedged p99 {hedged['p99_s'] * 1e3:.0f} ms "
        f"(p50 {hedged['p50_s'] * 1e3:.0f} ms), ratio {ratio:.2f}x "
        f"on {os.cpu_count()} CPUs"
    )
    print(
        f"hedges {hedges}/{requests} ({hedge_share:.1%}, "
        f"wins {hedged['router']['hedge_wins']}), "
        f"hit ratio unhedged {unhedged['hit_ratio']:.3f} -> "
        f"hedged {hedged['hit_ratio']:.3f}, "
        f"budget skips {hedged['router']['budget_skipped']}"
    )

    # The unhedged router never hedges; the hedged one stays under its
    # traffic allowance.  Both hold at any CPU count.
    assert unhedged["router"]["hedges"] == 0, unhedged["router"]
    assert hedges > 0, hedged["router"]
    assert hedge_share <= HEDGE_SHARE_CAP, (
        f"hedge traffic {hedge_share:.1%} exceeds the "
        f"{HEDGE_SHARE_CAP:.0%} cap — {hedged['router']}"
    )
    assert hedged["hit_ratio"] >= unhedged["hit_ratio"] - \
        HIT_RATIO_GIVEBACK, results

    if P99_FLOOR is None:
        print("p99 floor not enforced in quick mode (too few samples)")
    elif (os.cpu_count() or 1) >= MIN_CPUS_FOR_P99:
        assert ratio >= P99_FLOOR, (
            f"hedging only cut p99 by {ratio:.2f}x "
            f"(floor {P99_FLOOR}x) — {results}"
        )
    else:
        print(
            f"p99 floor ({P99_FLOOR}x) not enforced: "
            f"{os.cpu_count()} CPU(s) < {MIN_CPUS_FOR_P99}"
        )
